//! Regenerate every table and figure of the paper in one command.
//!
//! ```text
//! reproduce [--nodes 50|150] [--paper] [--reps R] [--duration S] \
//!           [--seed X] [--threads T] [--obs-out DIR] [--trace-out DIR] \
//!           [--table1] [--table2]
//! reproduce --scenario FILE.scn [--reps R] [--seed X] [--threads T] \
//!           [--shards N] [--obs-out DIR] [--trace-out DIR]
//! ```
//!
//! `--scenario FILE` runs one declarative scenario file instead of the
//! paper matrix: replications and seed default to the file's `expect`
//! line (when present), the measured aggregates are printed, and — when
//! the file pins expectations — verified, exiting non-zero on drift.
//!
//! Without `--table1`/`--table2` it runs the full matrix for the chosen
//! node count and prints Figs 5/6a+b, 7/8, 9/10 and 11/12 as TSV blocks.
//! With `--obs-out DIR` the runs carry the observability sink and each
//! algorithm's merged report lands in `DIR/<algo>.jsonl`. With
//! `--trace-out DIR` the runs carry causal query tracing and each
//! replication's Perfetto-loadable artifact lands in
//! `DIR/<algo>_rep<k>.trace.json`.

use manet_sim::experiments::{
    cfg_from_args, fig_connects, fig_distance_answers, fig_pings, fig_queries, run_matrix_traced,
    summary_table, take_obs_out, take_trace_out,
};
use manet_sim::{parse_scn, render_expect, runner, Scenario};
use p2p_core::AlgoKind;

/// Run one `.scn` file: simulate at the pinned (or overridden) reps and
/// seed, print the aggregate summary, and verify any `expect` line. With
/// `--obs-out DIR` the merged observability report (replication-merged,
/// and shard-merged when `--shards N` is in play) lands in
/// `DIR/<name>.jsonl`; with `--trace-out DIR`, one causal artifact per
/// replication lands in `DIR/<name>_rep<k>.trace.json`.
fn run_scenario_file(
    path: &str,
    args: &[String],
    obs_out: Option<&std::path::Path>,
    trace_out: Option<&std::path::Path>,
) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{path}: {e}");
            return 2;
        }
    };
    let mut file = match parse_scn(&text) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{path}: {e}");
            return 1;
        }
    };
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .map(|i| args[i + 1].clone())
    };
    let reps = flag("--reps")
        .map(|v| v.parse().expect("--reps count"))
        .or(file.expect.map(|e| e.reps))
        .unwrap_or(2);
    let seed = flag("--seed")
        .map(|v| v.parse().expect("--seed u64"))
        .or(file.expect.map(|e| e.seed))
        .unwrap_or(7);
    let threads = flag("--threads")
        .map(|v| v.parse().expect("--threads count"))
        .unwrap_or_else(|| reps.min(4));
    if let Some(n) = flag("--shards") {
        file.scenario.shards = n.parse().expect("--shards count");
        if let Err(e) = file.scenario.check() {
            eprintln!("{path}: {e}");
            return 1;
        }
    }
    let sharded = file.scenario.shards > 1;
    eprintln!(
        "# scenario {}: {} nodes, {} adversaries, {} reps, seed {seed:#x}",
        file.name,
        file.scenario.n_nodes,
        file.scenario.adversaries.len(),
        reps
    );
    let results = runner::run_replications(&file.scenario, reps, seed, threads);
    let got = manet_sim::expect_of(&results, reps, seed);
    let agg = runner::aggregate(&results, file.scenario.catalog.n_files as usize);
    if let Some(dir) = obs_out {
        if agg.obs.enabled() {
            std::fs::create_dir_all(dir).expect("create obs dir");
            let out = dir.join(format!("{}.jsonl", file.name));
            agg.obs.write_jsonl(&out).expect("write obs report");
            eprintln!("# obs report: {}", out.display());
        } else {
            eprintln!("# --obs-out ignored: the scenario opts out (obs off)");
        }
    }
    if let Some(dir) = trace_out {
        let paths = runner::write_trace_artifacts(dir, &file.name, &results)
            .expect("write trace artifacts");
        for p in paths {
            eprintln!("# trace artifact: {}", p.display());
        }
    }
    println!("measured {}", render_expect(&got));
    println!(
        "queries/rep {:.1}  answers/rep {:.1}  avg_conns {:.2}  frames/rep {:.0}  energy_mJ {:.1}",
        agg.queries_issued.mean,
        agg.answers.mean,
        agg.avg_connections.mean,
        agg.frames_sent.mean,
        agg.energy_mj.mean
    );
    if sharded {
        // Sharded runs define partition-invariant semantics of their own
        // (per-sender radio RNG streams, intrinsic event keys) — close to
        // but not bit-equal to the sequential path, whose shared radio RNG
        // draws in global pop order. The gate is therefore a single-shard
        // reference run: whatever the shard count, the traffic aggregates
        // must match R=1 exactly.
        let reference: Vec<_> = (0..reps)
            .map(|rep| {
                let rep_seed = runner::replication_seed(seed, rep);
                manet_sim::ShardedWorld::new(file.scenario.clone(), rep_seed, 1).run(1)
            })
            .collect();
        let want = manet_sim::expect_of(&reference, reps, seed);
        println!("single-shard reference {}", render_expect(&want));
        return if (got.queries, got.answers, got.frames)
            == (want.queries, want.answers, want.frames)
        {
            println!("sharded traffic aggregates match the single-shard reference");
            0
        } else {
            eprintln!(
                "{}: sharding broke partition invariance\n  1-shard  {}\n  measured {}",
                file.name,
                render_expect(&want),
                render_expect(&got)
            );
            1
        };
    }
    match file.expect {
        // Pins only bind at their own replication count and seed.
        Some(want) if (want.reps, want.seed) == (reps, seed) && got != want => {
            eprintln!(
                "{}: aggregate drift\n  pinned   {}\n  measured {}",
                file.name,
                render_expect(&want),
                render_expect(&got)
            );
            1
        }
        Some(want) if (want.reps, want.seed) == (reps, seed) => {
            println!("pinned aggregates reproduced exactly");
            0
        }
        _ => 0,
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let obs_out = take_obs_out(&mut args);
    let trace_out = take_trace_out(&mut args);
    if let Some(i) = args.iter().position(|a| a == "--scenario") {
        let path = args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--scenario takes a .scn file");
            std::process::exit(2);
        });
        args.drain(i..i + 2);
        std::process::exit(run_scenario_file(
            &path,
            &args,
            obs_out.as_deref(),
            trace_out.as_deref(),
        ));
    }
    if args.iter().any(|a| a == "--table1") {
        println!("Table 1: topologies and their characteristics\n");
        print!("{}", p2p_core::topology::render_table_1());
        return;
    }
    if args.iter().any(|a| a == "--table2") {
        let nodes = args
            .iter()
            .position(|a| a == "--nodes")
            .map_or(50, |i| args[i + 1].parse().expect("--nodes"));
        println!("Table 2: parameters used and their typical values\n");
        print!(
            "{}",
            Scenario::paper(nodes, AlgoKind::Regular).render_table_2()
        );
        return;
    }
    let mut cfg = cfg_from_args(&args);
    cfg.obs = obs_out.is_some();
    cfg.trace = trace_out.is_some();
    eprintln!(
        "# running matrix: {} nodes, {} s, {} reps, seed {:#x}, {} threads",
        cfg.n_nodes, cfg.duration_secs, cfg.reps, cfg.seed, cfg.threads
    );
    let matrix = run_matrix_traced(&cfg, trace_out.as_deref());
    if let Some(dir) = &obs_out {
        for (name, agg) in &matrix {
            let path = dir.join(format!("{name}.jsonl"));
            agg.obs.write_jsonl(&path).expect("write obs report");
            eprintln!("# obs report: {}", path.display());
        }
    }
    println!("{}", fig_distance_answers(&matrix, cfg.n_nodes));
    println!("{}", fig_connects(&matrix, cfg.n_nodes));
    println!("{}", fig_pings(&matrix, cfg.n_nodes));
    println!("{}", fig_queries(&matrix, cfg.n_nodes));
    println!("# scalar summary");
    print!("{}", summary_table(&matrix));
}
