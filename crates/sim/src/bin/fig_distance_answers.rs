//! Figs 5/6: average minimum distance to the file and answers per request.

use manet_sim::experiments::{cfg_from_args, fig_distance_answers, run_matrix};

fn main() {
    let cfg = cfg_from_args(&std::env::args().skip(1).collect::<Vec<_>>());
    let matrix = run_matrix(&cfg);
    print!("{}", fig_distance_answers(&matrix, cfg.n_nodes));
}
