//! Figs 9/10: ping messages received per node, decreasingly ordered.

use manet_sim::experiments::{cfg_from_args, fig_pings, run_matrix};

fn main() {
    let cfg = cfg_from_args(&std::env::args().skip(1).collect::<Vec<_>>());
    let matrix = run_matrix(&cfg);
    print!("{}", fig_pings(&matrix, cfg.n_nodes));
}
