//! Parameter sweeps (paper §8 future work): node density, radio coverage,
//! mobility speed, mobility model, and churn — the axes the authors name
//! for future study — plus matrix runs over a scenario-file corpus.
//!
//! ```text
//! sweep --axis density|coverage|speed|mobility|churn [--duration S] [--reps R] \
//!       [--obs-out DIR] [--trace-out DIR] ...
//! sweep --corpus DIR [--check-only] [--cheapest K]
//! ```
//!
//! With `--obs-out DIR` every cell's merged observability report is written
//! to `DIR/<axis>_<value>_<algo>.jsonl`. With `--trace-out DIR` every
//! replication's causal-trace artifact is written to
//! `DIR/<axis>_<value>_<algo>_rep<k>.trace.json`.
//!
//! `--corpus DIR` runs every `.scn` scenario file in `DIR` as a matrix and
//! verifies each file's pinned `expect` aggregates, exiting non-zero on
//! any parse error or mismatch. `--check-only` stops after parsing and
//! validating (no simulation); `--cheapest K` keeps only the K cheapest
//! scenarios by estimated cost (`nodes × seconds × reps`).

use manet_des::SimDuration;
use manet_sim::experiments::{cfg_from_args, take_obs_out, take_trace_out, TRACE_CAPACITY};
use manet_sim::{render_expect, runner, ChurnCfg, MobilityKind, Scenario, ScnFile};
use p2p_core::AlgoKind;

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = raw.iter().position(|a| a == "--corpus") {
        let dir = raw.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--corpus takes a directory");
            std::process::exit(2);
        });
        let check_only = raw.iter().any(|a| a == "--check-only");
        let cheapest = raw
            .iter()
            .position(|a| a == "--cheapest")
            .map(|i| raw[i + 1].parse::<usize>().expect("--cheapest count"));
        std::process::exit(run_corpus(&dir, check_only, cheapest));
    }
    let obs_out = take_obs_out(&mut raw);
    let trace_out = take_trace_out(&mut raw);
    let axis = raw
        .iter()
        .position(|a| a == "--axis")
        .map(|i| raw[i + 1].clone())
        .unwrap_or_else(|| "density".into());
    let rest: Vec<String> = {
        let mut v = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            if raw[i] == "--axis" {
                i += 2;
            } else {
                v.push(raw[i].clone());
                i += 1;
            }
        }
        v
    };
    let mut cfg = cfg_from_args(&rest);
    cfg.obs = obs_out.is_some();
    cfg.trace = trace_out.is_some();
    if !rest.iter().any(|a| a == "--duration") {
        cfg.duration_secs = 600; // sweeps trade duration for breadth
    }
    println!("axis\tvalue\talgorithm\tqueries\tanswers\tavg_conns\tframes\tavg_energy_mJ");
    let algos = [AlgoKind::Basic, AlgoKind::Regular];
    match axis.as_str() {
        "density" => {
            for n in [25usize, 50, 75, 100] {
                for algo in algos {
                    let mut s = Scenario::paper(n, algo);
                    s.duration = SimDuration::from_secs(cfg.duration_secs);
                    report(
                        "density",
                        n as f64,
                        algo,
                        &s,
                        &cfg,
                        obs_out.as_deref(),
                        trace_out.as_deref(),
                    );
                }
            }
        }
        "coverage" => {
            for range in [5.0f64, 10.0, 15.0, 20.0] {
                for algo in algos {
                    let mut s = Scenario::paper(cfg.n_nodes, algo);
                    s.radio.range_m = range;
                    s.duration = SimDuration::from_secs(cfg.duration_secs);
                    report(
                        "coverage",
                        range,
                        algo,
                        &s,
                        &cfg,
                        obs_out.as_deref(),
                        trace_out.as_deref(),
                    );
                }
            }
        }
        "speed" => {
            for speed in [0.5f64, 1.0, 2.0, 5.0] {
                for algo in algos {
                    let mut s = Scenario::paper(cfg.n_nodes, algo);
                    s.mobility = MobilityKind::Waypoint {
                        max_speed: speed,
                        max_pause: 100.0,
                    };
                    s.duration = SimDuration::from_secs(cfg.duration_secs);
                    report(
                        "speed",
                        speed,
                        algo,
                        &s,
                        &cfg,
                        obs_out.as_deref(),
                        trace_out.as_deref(),
                    );
                }
            }
        }
        "mobility" => {
            let models: [(&str, MobilityKind); 4] = [
                (
                    "waypoint",
                    MobilityKind::Waypoint {
                        max_speed: 1.0,
                        max_pause: 100.0,
                    },
                ),
                ("walk", MobilityKind::Walk { max_speed: 1.0 }),
                ("gauss_markov", MobilityKind::GaussMarkov),
                (
                    "rpgm_groups",
                    MobilityKind::Groups {
                        n_groups: 8,
                        max_speed: 1.0,
                        group_radius: 10.0,
                    },
                ),
            ];
            for (ix, (name, model)) in models.into_iter().enumerate() {
                for algo in algos {
                    let mut s = Scenario::paper(cfg.n_nodes, algo);
                    s.mobility = model;
                    s.duration = SimDuration::from_secs(cfg.duration_secs);
                    report(
                        name,
                        ix as f64,
                        algo,
                        &s,
                        &cfg,
                        obs_out.as_deref(),
                        trace_out.as_deref(),
                    );
                }
            }
        }
        "churn" => {
            for mean_uptime in [600.0f64, 300.0, 120.0] {
                for algo in algos {
                    let mut s = Scenario::paper(cfg.n_nodes, algo);
                    s.churn = Some(ChurnCfg {
                        mean_uptime,
                        mean_downtime: 60.0,
                    });
                    s.duration = SimDuration::from_secs(cfg.duration_secs);
                    report(
                        "churn_uptime",
                        mean_uptime,
                        algo,
                        &s,
                        &cfg,
                        obs_out.as_deref(),
                        trace_out.as_deref(),
                    );
                }
            }
        }
        other => panic!("unknown axis {other}: density|coverage|speed|mobility|churn"),
    }
}

/// Estimated cost of one corpus cell: nodes × simulated seconds × reps.
fn cost(file: &ScnFile) -> u64 {
    let reps = file.expect.map_or(2, |e| e.reps) as u64;
    let secs = file.scenario.duration.ticks() / manet_des::TICKS_PER_SECOND;
    file.scenario.n_nodes as u64 * secs * reps
}

/// Run (or just validate) every `.scn` file in `dir`; the process exit
/// code: 0 all good, 1 parse/validation error or aggregate mismatch.
fn run_corpus(dir: &str, check_only: bool, cheapest: Option<usize>) -> i32 {
    let mut paths: Vec<std::path::PathBuf> = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "scn"))
            .collect(),
        Err(e) => {
            eprintln!("--corpus {dir}: {e}");
            return 2;
        }
    };
    paths.sort();
    let mut failed = false;
    let mut files = Vec::new();
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{}: {e}", path.display());
                failed = true;
                continue;
            }
        };
        match manet_sim::parse_scn(&text) {
            Ok(f) => files.push(f),
            Err(e) => {
                eprintln!("{}: {e}", path.display());
                failed = true;
            }
        }
    }
    if let Some(k) = cheapest {
        files.sort_by_key(|f| (cost(f), f.name.clone()));
        files.truncate(k);
    }
    println!("scenario\tnodes\talgo\tduration_s\tadversaries\treps\tstatus");
    for file in &files {
        let s = &file.scenario;
        let reps = file.expect.map_or(2, |e| e.reps);
        let status = if check_only {
            "valid".to_string()
        } else {
            let seed = file.expect.map_or(7, |e| e.seed);
            let got = runner::measure_corpus(s, reps, seed, reps.min(4));
            match file.expect {
                Some(want) if got != want => {
                    eprintln!(
                        "{}: aggregate mismatch\n  pinned   {}\n  measured {}",
                        file.name,
                        render_expect(&want),
                        render_expect(&got)
                    );
                    failed = true;
                    "MISMATCH".to_string()
                }
                Some(_) => format!("ok fp={:#018x}", got.fingerprint),
                None => format!("unpinned fp={:#018x}", got.fingerprint),
            }
        };
        println!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}",
            file.name,
            s.n_nodes,
            s.algo.name(),
            s.duration.ticks() / manet_des::TICKS_PER_SECOND,
            s.adversaries.len(),
            reps,
            status
        );
    }
    if failed {
        1
    } else {
        0
    }
}

fn report(
    axis: &str,
    value: f64,
    algo: AlgoKind,
    s: &Scenario,
    cfg: &manet_sim::ExperimentCfg,
    obs_out: Option<&std::path::Path>,
    trace_out: Option<&std::path::Path>,
) {
    let mut s = s.clone();
    if cfg.obs {
        s.obs = manet_sim::ObsConfig::enabled();
    }
    if cfg.trace {
        s.trace_capacity = TRACE_CAPACITY;
    }
    s.shards = cfg.shards;
    let s = &s;
    let results = runner::run_replications(s, cfg.reps.min(3), cfg.seed, cfg.threads);
    let agg = runner::aggregate(&results, s.catalog.n_files as usize);
    if let Some(dir) = obs_out {
        let path = dir.join(format!("{axis}_{value}_{}.jsonl", algo.name()));
        agg.obs.write_jsonl(&path).expect("write obs report");
        eprintln!("# obs report: {}", path.display());
    }
    if let Some(dir) = trace_out {
        let cell = format!("{axis}_{value}_{}", algo.name());
        let paths =
            runner::write_trace_artifacts(dir, &cell, &results).expect("write trace artifacts");
        for p in paths {
            eprintln!("# trace artifact: {}", p.display());
        }
    }
    println!(
        "{axis}\t{value}\t{}\t{:.1}\t{:.1}\t{:.2}\t{:.0}\t{:.1}",
        algo.name(),
        agg.queries_issued.mean,
        agg.answers.mean,
        agg.avg_connections.mean,
        agg.frames_sent.mean,
        agg.energy_mj.mean
    );
}
