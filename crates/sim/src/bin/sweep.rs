//! Parameter sweeps (paper §8 future work): node density, radio coverage,
//! mobility speed, mobility model, and churn — the axes the authors name
//! for future study.
//!
//! ```text
//! sweep --axis density|coverage|speed|mobility|churn [--duration S] [--reps R] \
//!       [--obs-out DIR] [--trace-out DIR] ...
//! ```
//!
//! With `--obs-out DIR` every cell's merged observability report is written
//! to `DIR/<axis>_<value>_<algo>.jsonl`. With `--trace-out DIR` every
//! replication's causal-trace artifact is written to
//! `DIR/<axis>_<value>_<algo>_rep<k>.trace.json`.

use manet_des::SimDuration;
use manet_sim::experiments::{cfg_from_args, take_obs_out, take_trace_out, TRACE_CAPACITY};
use manet_sim::{runner, ChurnCfg, MobilityKind, Scenario};
use p2p_core::AlgoKind;

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let obs_out = take_obs_out(&mut raw);
    let trace_out = take_trace_out(&mut raw);
    let axis = raw
        .iter()
        .position(|a| a == "--axis")
        .map(|i| raw[i + 1].clone())
        .unwrap_or_else(|| "density".into());
    let rest: Vec<String> = {
        let mut v = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            if raw[i] == "--axis" {
                i += 2;
            } else {
                v.push(raw[i].clone());
                i += 1;
            }
        }
        v
    };
    let mut cfg = cfg_from_args(&rest);
    cfg.obs = obs_out.is_some();
    cfg.trace = trace_out.is_some();
    if !rest.iter().any(|a| a == "--duration") {
        cfg.duration_secs = 600; // sweeps trade duration for breadth
    }
    println!("axis\tvalue\talgorithm\tqueries\tanswers\tavg_conns\tframes\tavg_energy_mJ");
    let algos = [AlgoKind::Basic, AlgoKind::Regular];
    match axis.as_str() {
        "density" => {
            for n in [25usize, 50, 75, 100] {
                for algo in algos {
                    let mut s = Scenario::paper(n, algo);
                    s.duration = SimDuration::from_secs(cfg.duration_secs);
                    report(
                        "density",
                        n as f64,
                        algo,
                        &s,
                        &cfg,
                        obs_out.as_deref(),
                        trace_out.as_deref(),
                    );
                }
            }
        }
        "coverage" => {
            for range in [5.0f64, 10.0, 15.0, 20.0] {
                for algo in algos {
                    let mut s = Scenario::paper(cfg.n_nodes, algo);
                    s.radio.range_m = range;
                    s.duration = SimDuration::from_secs(cfg.duration_secs);
                    report(
                        "coverage",
                        range,
                        algo,
                        &s,
                        &cfg,
                        obs_out.as_deref(),
                        trace_out.as_deref(),
                    );
                }
            }
        }
        "speed" => {
            for speed in [0.5f64, 1.0, 2.0, 5.0] {
                for algo in algos {
                    let mut s = Scenario::paper(cfg.n_nodes, algo);
                    s.mobility = MobilityKind::Waypoint {
                        max_speed: speed,
                        max_pause: 100.0,
                    };
                    s.duration = SimDuration::from_secs(cfg.duration_secs);
                    report(
                        "speed",
                        speed,
                        algo,
                        &s,
                        &cfg,
                        obs_out.as_deref(),
                        trace_out.as_deref(),
                    );
                }
            }
        }
        "mobility" => {
            let models: [(&str, MobilityKind); 4] = [
                (
                    "waypoint",
                    MobilityKind::Waypoint {
                        max_speed: 1.0,
                        max_pause: 100.0,
                    },
                ),
                ("walk", MobilityKind::Walk { max_speed: 1.0 }),
                ("gauss_markov", MobilityKind::GaussMarkov),
                (
                    "rpgm_groups",
                    MobilityKind::Groups {
                        n_groups: 8,
                        max_speed: 1.0,
                        group_radius: 10.0,
                    },
                ),
            ];
            for (ix, (name, model)) in models.into_iter().enumerate() {
                for algo in algos {
                    let mut s = Scenario::paper(cfg.n_nodes, algo);
                    s.mobility = model;
                    s.duration = SimDuration::from_secs(cfg.duration_secs);
                    report(
                        name,
                        ix as f64,
                        algo,
                        &s,
                        &cfg,
                        obs_out.as_deref(),
                        trace_out.as_deref(),
                    );
                }
            }
        }
        "churn" => {
            for mean_uptime in [600.0f64, 300.0, 120.0] {
                for algo in algos {
                    let mut s = Scenario::paper(cfg.n_nodes, algo);
                    s.churn = Some(ChurnCfg {
                        mean_uptime,
                        mean_downtime: 60.0,
                    });
                    s.duration = SimDuration::from_secs(cfg.duration_secs);
                    report(
                        "churn_uptime",
                        mean_uptime,
                        algo,
                        &s,
                        &cfg,
                        obs_out.as_deref(),
                        trace_out.as_deref(),
                    );
                }
            }
        }
        other => panic!("unknown axis {other}: density|coverage|speed|mobility|churn"),
    }
}

fn report(
    axis: &str,
    value: f64,
    algo: AlgoKind,
    s: &Scenario,
    cfg: &manet_sim::ExperimentCfg,
    obs_out: Option<&std::path::Path>,
    trace_out: Option<&std::path::Path>,
) {
    let mut s = s.clone();
    if cfg.obs {
        s.obs = manet_sim::ObsConfig::enabled();
    }
    if cfg.trace {
        s.trace_capacity = TRACE_CAPACITY;
    }
    let s = &s;
    let results = runner::run_replications(s, cfg.reps.min(3), cfg.seed, cfg.threads);
    let agg = runner::aggregate(&results, s.catalog.n_files as usize);
    if let Some(dir) = obs_out {
        let path = dir.join(format!("{axis}_{value}_{}.jsonl", algo.name()));
        agg.obs.write_jsonl(&path).expect("write obs report");
        eprintln!("# obs report: {}", path.display());
    }
    if let Some(dir) = trace_out {
        let cell = format!("{axis}_{value}_{}", algo.name());
        let paths =
            runner::write_trace_artifacts(dir, &cell, &results).expect("write trace artifacts");
        for p in paths {
            eprintln!("# trace artifact: {}", p.display());
        }
    }
    println!(
        "{axis}\t{value}\t{}\t{:.1}\t{:.1}\t{:.2}\t{:.0}\t{:.1}",
        algo.name(),
        agg.queries_issued.mean,
        agg.answers.mean,
        agg.avg_connections.mean,
        agg.frames_sent.mean,
        agg.energy_mj.mean
    );
}
