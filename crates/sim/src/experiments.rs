//! The paper's experiments, one function per figure.
//!
//! Every figure in §7.4 comes from the same run matrix: each of the four
//! algorithms simulated under Table 2's scenario at a given node count.
//! [`run_matrix`] executes that matrix once and the `fig_*` renderers
//! extract each figure's series, so regenerating all figures costs four
//! simulations per node count, exactly like the paper's campaign.

use std::collections::BTreeMap;

use manet_des::SimDuration;
use p2p_core::AlgoKind;

use crate::runner::{aggregate, run_replications, Aggregate};
use crate::scenario::Scenario;

/// Experiment-level knobs (scale vs. fidelity).
#[derive(Clone, Copy, Debug)]
pub struct ExperimentCfg {
    /// Total ad-hoc nodes (the paper: 50 or 150).
    pub n_nodes: usize,
    /// Simulated seconds (the paper: 3600).
    pub duration_secs: u64,
    /// Replications per cell (the paper: 33).
    pub reps: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Force the observability sink (metrics registry, spans, flight
    /// recorder) on for every replication. The sink is on by default at
    /// the scenario level, so this only matters for configs derived from
    /// an opted-out scenario. Never changes results.
    pub obs: bool,
    /// Enable causal query tracing on every replication (sets
    /// [`Scenario::trace_capacity`]). Never changes results.
    pub trace: bool,
    /// Spatial shards per run (1 = the bit-identical sequential path).
    pub shards: usize,
}

/// Trace-ring capacity used when [`ExperimentCfg::trace`] is set: large
/// enough that short instrumented runs retain every event.
pub const TRACE_CAPACITY: usize = 1 << 18;

impl ExperimentCfg {
    /// The paper's full campaign for a node count (33 reps, 3600 s). On a
    /// laptop this takes a while at 150 nodes; `default_scale` trades
    /// replications for wall-clock.
    pub fn paper_scale(n_nodes: usize) -> Self {
        ExperimentCfg {
            n_nodes,
            duration_secs: 3600,
            reps: 33,
            seed: 0x1DDF_2003,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            obs: false,
            trace: false,
            shards: 1,
        }
    }

    /// A single-machine default preserving the figures' shapes: full
    /// duration at 50 nodes with 5 reps; 900 s at 150 nodes with 2 reps
    /// (the sorted per-node curves stabilize well before that).
    pub fn default_scale(n_nodes: usize) -> Self {
        let (duration_secs, reps) = if n_nodes <= 50 { (3600, 5) } else { (900, 2) };
        ExperimentCfg {
            n_nodes,
            duration_secs,
            reps,
            seed: 0x1DDF_2003,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            obs: false,
            trace: false,
            shards: 1,
        }
    }

    /// The scenario this experiment runs for a given algorithm.
    pub fn scenario(&self, algo: AlgoKind) -> Scenario {
        let mut s = Scenario::paper(self.n_nodes, algo);
        s.duration = SimDuration::from_secs(self.duration_secs);
        if self.obs {
            s.obs = manet_obs::ObsConfig::enabled();
        }
        if self.trace {
            s.trace_capacity = TRACE_CAPACITY;
        }
        s.shards = self.shards;
        s
    }
}

/// Run all four algorithms under one experiment configuration.
pub fn run_matrix(cfg: &ExperimentCfg) -> BTreeMap<&'static str, Aggregate> {
    run_matrix_traced(cfg, None)
}

/// [`run_matrix`], optionally exporting one causal-trace artifact per
/// replication into `trace_out` (named `<algo>_rep<k>.trace.json`).
/// Requires [`ExperimentCfg::trace`] for the artifacts to be non-trivial.
pub fn run_matrix_traced(
    cfg: &ExperimentCfg,
    trace_out: Option<&std::path::Path>,
) -> BTreeMap<&'static str, Aggregate> {
    let mut out = BTreeMap::new();
    for algo in AlgoKind::ALL {
        let scenario = cfg.scenario(algo);
        let results = run_replications(&scenario, cfg.reps, cfg.seed, cfg.threads);
        if let Some(dir) = trace_out {
            let paths = crate::runner::write_trace_artifacts(dir, algo.name(), &results)
                .expect("write trace artifacts");
            for p in paths {
                eprintln!("# trace artifact: {}", p.display());
            }
        }
        out.insert(
            algo.name(),
            aggregate(&results, scenario.catalog.n_files as usize),
        );
    }
    out
}

/// Render a TSV block: header + one row per x value, one column per
/// algorithm, in the paper's presentation order.
fn render_columns(
    title: &str,
    x_label: &str,
    matrix: &BTreeMap<&'static str, Vec<f64>>,
    precision: usize,
) -> String {
    let order = ["Basic", "Regular", "Random", "Hybrid"];
    let mut s = format!("# {title}\n{x_label}");
    for name in order {
        if matrix.contains_key(name) {
            s.push('\t');
            s.push_str(name);
        }
    }
    s.push('\n');
    let rows = matrix.values().map(|v| v.len()).max().unwrap_or(0);
    for i in 0..rows {
        s.push_str(&format!("{}", i + 1));
        for name in order {
            if let Some(col) = matrix.get(name) {
                let v = col.get(i).copied().unwrap_or(0.0);
                s.push_str(&format!("\t{v:.precision$}"));
            }
        }
        s.push('\n');
    }
    s
}

/// Figs 5/6: per-file average minimum distance and answers per request.
pub fn fig_distance_answers(matrix: &BTreeMap<&'static str, Aggregate>, n_nodes: usize) -> String {
    let mut dist = BTreeMap::new();
    let mut answers = BTreeMap::new();
    for (&name, agg) in matrix {
        let series = agg.files.series(10);
        dist.insert(name, series.iter().map(|&(_, d, _)| d).collect::<Vec<_>>());
        answers.insert(name, series.iter().map(|&(_, _, a)| a).collect::<Vec<_>>());
    }
    format!(
        "{}\n{}",
        render_columns(
            &format!(
                "Fig {}a: average minimum distance to the file ({n_nodes} nodes, 75% p2p)",
                if n_nodes <= 50 { 5 } else { 6 }
            ),
            "file",
            &dist,
            3,
        ),
        render_columns(
            &format!(
                "Fig {}b: average number of answers per request ({n_nodes} nodes, 75% p2p)",
                if n_nodes <= 50 { 5 } else { 6 }
            ),
            "file",
            &answers,
            3,
        )
    )
}

/// Figs 7/8: connect messages received per node, decreasingly ordered.
pub fn fig_connects(matrix: &BTreeMap<&'static str, Aggregate>, n_nodes: usize) -> String {
    let cols: BTreeMap<&'static str, Vec<f64>> = matrix
        .iter()
        .map(|(&k, a)| (k, a.connects_sorted.clone()))
        .collect();
    render_columns(
        &format!(
            "Fig {}: connect messages received ({n_nodes} nodes, 75% p2p)",
            if n_nodes <= 50 { 7 } else { 8 }
        ),
        "node_rank",
        &cols,
        2,
    )
}

/// Figs 9/10: ping messages received per node, decreasingly ordered.
pub fn fig_pings(matrix: &BTreeMap<&'static str, Aggregate>, n_nodes: usize) -> String {
    let cols: BTreeMap<&'static str, Vec<f64>> = matrix
        .iter()
        .map(|(&k, a)| (k, a.pings_sorted.clone()))
        .collect();
    render_columns(
        &format!(
            "Fig {}: ping messages received ({n_nodes} nodes, 75% p2p)",
            if n_nodes <= 50 { 9 } else { 10 }
        ),
        "node_rank",
        &cols,
        2,
    )
}

/// Figs 11/12: query messages received per node, decreasingly ordered.
pub fn fig_queries(matrix: &BTreeMap<&'static str, Aggregate>, n_nodes: usize) -> String {
    let cols: BTreeMap<&'static str, Vec<f64>> = matrix
        .iter()
        .map(|(&k, a)| (k, a.queries_sorted.clone()))
        .collect();
    render_columns(
        &format!(
            "Fig {}: query messages received ({n_nodes} nodes, 75% p2p)",
            if n_nodes <= 50 { 11 } else { 12 }
        ),
        "node_rank",
        &cols,
        2,
    )
}

/// A compact scalar summary table across algorithms (not a paper figure;
/// used by the shape checks in EXPERIMENTS.md).
pub fn summary_table(matrix: &BTreeMap<&'static str, Aggregate>) -> String {
    let order = ["Basic", "Regular", "Random", "Hybrid"];
    let mut s = String::from(
        "algorithm\treps\tqueries\tanswers\tavg_conns\tframes_sent\tavg_energy_mJ\tmasters\tslaves\n",
    );
    for name in order {
        if let Some(a) = matrix.get(name) {
            s.push_str(&format!(
                "{name}\t{}\t{:.1}\t{:.1}\t{:.2}\t{:.0}\t{:.1}\t{}\t{}\n",
                a.reps,
                a.queries_issued.mean,
                a.answers.mean,
                a.avg_connections.mean,
                a.frames_sent.mean,
                a.energy_mj.mean,
                a.roles[3],
                a.roles[4],
            ));
        }
    }
    s
}

/// Usage text for the experiment binaries (printed by `--help`).
pub const USAGE: &str = "\
options:
  --nodes N       total ad-hoc nodes (default 50; the paper uses 50 or 150)
  --paper         paper-scale campaign (33 reps, 3600 s)
  --duration S    simulated seconds per replication
  --reps R        replications per cell
  --seed X        experiment seed (u64)
  --threads T     worker threads
  --shards N      spatial shards per run (default 1 = sequential path;
                  N > 1 runs each replication as a sharded world and uses
                  --threads as the shard-worker count)
  --obs-out DIR   write one JSONL observability report per cell into DIR
                  (counters, histograms, time series, span profile,
                  flight-recorder records; the sink itself is always on
                  unless the scenario says `obs off`)
  --trace-out DIR enable causal query tracing and write one Perfetto-loadable
                  trace artifact per replication into DIR
                  (<cell>_rep<k>.trace.json; inspect with trace_query)
  --help          print this text";

/// Parse `--flag value` style arguments shared by the figure binaries.
///
/// `--help` prints [`USAGE`] and exits. `--obs-out DIR` is a binary-level
/// flag: binaries that support it strip it (see [`take_obs_out`]) before
/// calling this, and it is rejected here otherwise.
pub fn cfg_from_args(args: &[String]) -> ExperimentCfg {
    let mut n_nodes = 50usize;
    let mut cfg_kind = "default";
    let mut duration = None;
    let mut reps = None;
    let mut seed = None;
    let mut threads = None;
    let mut shards = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--nodes" => {
                n_nodes = args[i + 1].parse().expect("--nodes takes an integer");
                i += 2;
            }
            "--paper" => {
                cfg_kind = "paper";
                i += 1;
            }
            "--duration" => {
                duration = Some(args[i + 1].parse().expect("--duration seconds"));
                i += 2;
            }
            "--reps" => {
                reps = Some(args[i + 1].parse().expect("--reps count"));
                i += 2;
            }
            "--seed" => {
                seed = Some(args[i + 1].parse().expect("--seed u64"));
                i += 2;
            }
            "--threads" => {
                threads = Some(args[i + 1].parse().expect("--threads count"));
                i += 2;
            }
            "--shards" => {
                shards = Some(args[i + 1].parse().expect("--shards count"));
                i += 2;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => panic!("unknown argument {other}\n{USAGE}"),
        }
    }
    let mut cfg = if cfg_kind == "paper" {
        ExperimentCfg::paper_scale(n_nodes)
    } else {
        ExperimentCfg::default_scale(n_nodes)
    };
    if let Some(d) = duration {
        cfg.duration_secs = d;
    }
    if let Some(r) = reps {
        cfg.reps = r;
    }
    if let Some(s) = seed {
        cfg.seed = s;
    }
    if let Some(t) = threads {
        cfg.threads = t;
    }
    if let Some(r) = shards {
        cfg.shards = r;
    }
    cfg
}

/// Strip a `--obs-out DIR` pair from `args`, returning the directory when
/// present. Binaries call this before [`cfg_from_args`] and set
/// [`ExperimentCfg::obs`] from the result.
pub fn take_obs_out(args: &mut Vec<String>) -> Option<std::path::PathBuf> {
    let i = args.iter().position(|a| a == "--obs-out")?;
    assert!(i + 1 < args.len(), "--obs-out takes a directory");
    let dir = args.remove(i + 1);
    args.remove(i);
    Some(std::path::PathBuf::from(dir))
}

/// Strip a `--trace-out DIR` pair from `args`, returning the directory
/// when present. Binaries call this before [`cfg_from_args`] and set
/// [`ExperimentCfg::trace`] from the result.
pub fn take_trace_out(args: &mut Vec<String>) -> Option<std::path::PathBuf> {
    let i = args.iter().position(|a| a == "--trace-out")?;
    assert!(i + 1 < args.len(), "--trace-out takes a directory");
    let dir = args.remove(i + 1);
    args.remove(i);
    Some(std::path::PathBuf::from(dir))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExperimentCfg {
        ExperimentCfg {
            n_nodes: 12,
            duration_secs: 60,
            reps: 1,
            seed: 3,
            threads: 1,
            obs: false,
            trace: false,
            shards: 1,
        }
    }

    #[test]
    fn matrix_covers_all_algorithms() {
        let m = run_matrix(&tiny_cfg());
        for name in ["Basic", "Regular", "Random", "Hybrid"] {
            assert!(m.contains_key(name));
        }
    }

    #[test]
    fn figures_render_tsv() {
        let m = run_matrix(&tiny_cfg());
        let s = fig_connects(&m, 12);
        assert!(s.contains("Basic\tRegular\tRandom\tHybrid"));
        assert!(s.lines().count() > 5, "one row per member");
        let d = fig_distance_answers(&m, 12);
        assert!(d.contains("average minimum distance"));
        assert!(d.contains("answers per request"));
        let q = fig_queries(&m, 12);
        assert!(q.starts_with("# Fig 11"));
        let p = fig_pings(&m, 12);
        assert!(p.starts_with("# Fig 9"));
        let t = summary_table(&m);
        assert_eq!(t.lines().count(), 5);
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--nodes", "150", "--reps", "7", "--duration", "300"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let cfg = cfg_from_args(&args);
        assert_eq!(cfg.n_nodes, 150);
        assert_eq!(cfg.reps, 7);
        assert_eq!(cfg.duration_secs, 300);
    }

    #[test]
    fn obs_out_is_stripped_before_cfg_parsing() {
        let mut args: Vec<String> = ["--nodes", "30", "--obs-out", "/tmp/obs", "--reps", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let dir = take_obs_out(&mut args);
        assert_eq!(dir.as_deref(), Some(std::path::Path::new("/tmp/obs")));
        let cfg = cfg_from_args(&args);
        assert_eq!(cfg.n_nodes, 30);
        assert_eq!(cfg.reps, 2);
        assert!(take_obs_out(&mut args).is_none(), "already stripped");
    }

    #[test]
    fn paper_scale_matches_table_2() {
        let cfg = ExperimentCfg::paper_scale(50);
        assert_eq!(cfg.reps, 33);
        assert_eq!(cfg.duration_secs, 3600);
    }
}
