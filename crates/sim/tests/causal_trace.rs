//! The causal-tracing contract: every overlay delivery appears in exactly
//! one causal tree, per-path latency decomposes exactly, and the exported
//! artifact survives schema validation and a render→parse round-trip.

use manet_metrics::MsgKind;
use manet_obs::causal::{self, CausalKind};
use manet_obs::json::Value;
use manet_sim::{Scenario, World};
use p2p_core::AlgoKind;

/// A traced run large enough to exercise discovery, floods and queries,
/// with a ring that provably evicts nothing.
fn traced_run(algo: AlgoKind, seed: u64) -> manet_sim::RunResult {
    let mut s = Scenario::quick(20, algo, 300);
    s.trace_capacity = 1 << 20;
    let r = World::new(s, seed).run();
    assert_eq!(r.trace.dropped(), 0, "ring must retain every event");
    r
}

#[test]
fn tree_deliveries_reconcile_with_node_counters() {
    for algo in AlgoKind::ALL {
        let r = traced_run(algo, 31);
        let events = r.trace.causal_events();
        let trees = causal::build_trees(&events);
        assert!(!trees.is_empty(), "{algo}: no causal trees");

        // With nothing evicted, no event can be orphaned: every tree
        // event survives into the forest.
        let in_trees: usize = trees.iter().map(|t| t.events.len()).sum();
        assert_eq!(in_trees, events.len(), "{algo}: orphaned events");

        // Every overlay delivery is counted once by NodeCounters and
        // recorded once as a Deliver span in some causal tree; with a
        // lossless ring the two censuses must agree exactly.
        let tree_deliveries: u64 = trees
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| matches!(e.kind, CausalKind::Deliver { .. }))
            .count() as u64;
        let counter_total: u64 = MsgKind::ALL.iter().map(|&k| r.counters.total(k)).sum();
        assert_eq!(
            tree_deliveries, counter_total,
            "{algo}: causal trees and NodeCounters disagree"
        );
        assert!(counter_total > 0, "{algo}: nothing was delivered");
    }
}

#[test]
fn per_path_breakdowns_decompose_exactly() {
    let r = traced_run(AlgoKind::Regular, 32);
    let events = r.trace.causal_events();
    let trees = causal::build_trees(&events);
    let mut paths = 0u64;
    let mut queries = 0u64;
    for tree in &trees {
        let s = tree.summary();
        if s.label == "query" {
            queries += 1;
        }
        for p in &s.deliveries {
            assert_eq!(
                p.total,
                p.discovery + p.transit + p.processing,
                "trace {}: path to node {} does not decompose",
                s.trace_id,
                p.node
            );
            assert!(p.transit > 0, "radio transit takes nonzero time");
            paths += 1;
        }
    }
    assert!(paths > 0, "no delivery paths to decompose");
    assert!(queries > 0, "no query traces minted");
}

#[test]
fn exported_artifact_validates_and_round_trips() {
    let r = traced_run(AlgoKind::Basic, 33);
    let events = r.trace.causal_events();
    let doc = causal::artifact(&events);
    causal::validate_artifact(&doc).expect("artifact must pass schema validation");
    assert_eq!(
        doc.get("orphaned").and_then(Value::as_f64),
        Some(0.0),
        "lossless ring must orphan nothing"
    );

    let back = Value::parse(&doc.render()).expect("rendered artifact must re-parse");
    causal::validate_artifact(&back).expect("round-tripped artifact must validate");
    let a = causal::events_from_artifact(&doc).unwrap();
    let b = causal::events_from_artifact(&back).unwrap();
    assert_eq!(a, b, "spans must survive the round-trip");
    assert_eq!(a.len(), events.len(), "artifact must carry every event");
}

#[test]
fn traces_are_deterministic_across_reruns() {
    let a = traced_run(AlgoKind::Hybrid, 34).trace.causal_events();
    let b = traced_run(AlgoKind::Hybrid, 34).trace.causal_events();
    assert_eq!(a, b, "same seed must reproduce the same causal forest");
    let c = traced_run(AlgoKind::Hybrid, 35).trace.causal_events();
    assert_ne!(a, c, "different seeds must differ");
}
