//! The observability contract: enabling the sink never changes results,
//! merged reports are thread-count invariant, and failure dumps are
//! well-formed JSONL.

use manet_obs::json::Value;
use manet_sim::{aggregate, check_result_dumping, run_replications, ObsConfig, Scenario, World};
use p2p_core::AlgoKind;

fn observed(mut s: Scenario) -> Scenario {
    s.obs = ObsConfig::enabled();
    s
}

fn unobserved(mut s: Scenario) -> Scenario {
    s.obs = ObsConfig::disabled();
    s
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("obs_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn observed_runs_are_bit_identical_to_unobserved() {
    for algo in [AlgoKind::Basic, AlgoKind::Regular] {
        // Obs is on by default; the bare baseline is the one that opts out.
        let s = Scenario::quick(20, algo, 200);
        let plain = World::new(unobserved(s.clone()), 17).run();
        let seen = World::new(observed(s), 17).run();

        assert_eq!(plain.fingerprint(), seen.fingerprint(), "{algo}");
        assert_eq!(plain.events, seen.events, "{algo}");
        assert!(!plain.obs.enabled(), "disabled sink must leave no report");
        assert!(seen.obs.enabled());

        // The mirrored counters must agree with the run's own totals.
        let reg = &seen.obs.registry;
        assert_eq!(reg.counter_by_name("des.events_popped"), Some(seen.events));
        assert_eq!(
            reg.counter_by_name("sim.queries_issued"),
            Some(seen.queries_issued)
        );
        assert_eq!(
            reg.counter_by_name("sim.answers_received"),
            Some(seen.answers_received)
        );
        let planned = reg.counter_by_name("radio.tx_planned").unwrap_or(0);
        assert!(planned > 0, "{algo}: broadcasts must have been planned");
    }
}

#[test]
fn traced_runs_are_bit_identical_to_untraced() {
    for algo in AlgoKind::ALL {
        let s = Scenario::quick(20, algo, 200);
        let plain = World::new(s.clone(), 23).run();
        let mut st = s.clone();
        st.trace_capacity = 1 << 16;
        let traced = World::new(st, 23).run();

        assert_eq!(plain.fingerprint(), traced.fingerprint(), "{algo}");
        assert_eq!(plain.events, traced.events, "{algo}");
        assert_eq!(plain.queries_issued, traced.queries_issued, "{algo}");
        assert_eq!(plain.answers_received, traced.answers_received, "{algo}");
        assert!(traced.trace.offered() > 0, "{algo}: trace stayed empty");
        assert_eq!(plain.trace.offered(), 0, "{algo}: untraced run recorded");
    }
}

#[test]
fn merged_obs_reports_are_thread_count_invariant() {
    let s = observed(Scenario::quick(15, AlgoKind::Regular, 120));
    let serial = run_replications(&s, 4, 5, 1);
    let parallel = run_replications(&s, 4, 5, 4);
    let a = aggregate(&serial, s.catalog.n_files as usize).obs;
    let b = aggregate(&parallel, s.catalog.n_files as usize).obs;

    assert_eq!(a.runs, 4);
    assert_eq!(a.runs, b.runs);
    // Spans are wall-clock timings and legitimately differ between runs;
    // everything else in the merged report must be identical.
    assert_eq!(
        a.registry, b.registry,
        "merged registries must not depend on threads"
    );
    assert_eq!(
        a.recorder, b.recorder,
        "merged recorders must not depend on threads"
    );
}

#[test]
fn failure_dumps_are_parseable_jsonl() {
    let dir = scratch_dir("failure");
    let s = observed(Scenario::quick(20, AlgoKind::Regular, 120));
    let mut r = World::new(s.clone(), 18).run();
    r.answers_received += 1_000_000;
    let violations = check_result_dumping(&s, &r, &dir);
    assert!(violations.iter().any(|m| m.contains("answer conservation")));

    let path = dir.join("failure_check_result.jsonl");
    let text = std::fs::read_to_string(&path).expect("dump written");
    let mut types = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let v = Value::parse(line).unwrap_or_else(|e| panic!("line {i} unparseable: {e}"));
        types.push(
            v.get("type")
                .and_then(|t| t.as_str())
                .expect("typed line")
                .to_string(),
        );
    }
    assert_eq!(types.first().map(String::as_str), Some("failure"));
    assert!(types.iter().any(|t| t == "counter"), "{types:?}");
    assert!(types.iter().any(|t| t == "obs_report"), "{types:?}");

    let header = Value::parse(text.lines().next().unwrap()).unwrap();
    let dumped = header
        .get("violations")
        .and_then(|v| v.as_arr())
        .expect("violations array");
    assert_eq!(dumped.len(), violations.len());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn run_checked_clean_run_matches_plain_run() {
    let dir = scratch_dir("clean");
    let s = observed(Scenario::quick(20, AlgoKind::Regular, 200));
    let plain = World::new(s.clone(), 21).run();
    let (checked, violations) = World::new(s, 21).run_checked(&dir);

    assert!(violations.is_empty(), "{violations:?}");
    assert_eq!(plain.fingerprint(), checked.fingerprint());
    assert!(!dir.exists(), "clean runs must not leave dumps behind");
}
