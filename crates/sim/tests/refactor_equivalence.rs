//! The layered refactor's bit-identity contract.
//!
//! Every fingerprint below was captured on the pre-refactor monolithic
//! `World` (one god-object owning the event mega-enum, all node state and
//! all cross-cutting processes) and must be reproduced exactly by the
//! engine + node-stack + subsystem decomposition. The scenarios cover the
//! four algorithms plus every subsystem the refactor extracted: mobility,
//! churn, the full fault plan (base loss, bursts, a crash with restart,
//! link flaps, delay spikes), small-world sampling, group mobility and
//! finite batteries.
//!
//! If one of these fails, the refactored world is *behaviourally* different
//! from the original — not merely restructured — and the change that broke
//! it altered event ordering, RNG stream usage or accounting somewhere.

use manet_des::{NodeId, SimDuration, SimTime};
use manet_sim::{
    BurstCfg, ChurnCfg, CrashEvent, FaultPlan, JitterSpikes, LinkFlaps, MobilityKind, PacketLoss,
    Scenario, World,
};
use p2p_core::AlgoKind;

fn fp(s: Scenario, seed: u64) -> u64 {
    World::new(s, seed).run().fingerprint()
}

#[test]
fn plain_scenarios_match_pre_refactor_fingerprints() {
    let golden = [
        (AlgoKind::Basic, 0x5a69e7e0aff9bdb6u64),
        (AlgoKind::Regular, 0xcbaafd99708ae6d9),
        (AlgoKind::Random, 0x2eed84d5a0e3beb7),
        (AlgoKind::Hybrid, 0x825d9fc8e74b5cc0),
    ];
    for (algo, want) in golden {
        let s = Scenario::quick(30, algo, 240);
        let got = fp(s, 7);
        assert_eq!(got, want, "plain {algo}: 0x{got:016x} != 0x{want:016x}");
    }
}

#[test]
fn churn_scenarios_match_pre_refactor_fingerprints() {
    let golden = [
        (AlgoKind::Regular, 0xa6f9106671654de6u64),
        (AlgoKind::Hybrid, 0x95be572115653640),
    ];
    for (algo, want) in golden {
        let mut s = Scenario::quick(24, algo, 300);
        s.churn = Some(ChurnCfg {
            mean_uptime: 60.0,
            mean_downtime: 30.0,
        });
        s.smallworld_sample = Some(SimDuration::from_secs(60));
        let got = fp(s, 11);
        assert_eq!(got, want, "churn {algo}: 0x{got:016x} != 0x{want:016x}");
    }
}

#[test]
fn fault_plan_scenarios_match_pre_refactor_fingerprints() {
    let golden = [
        (AlgoKind::Basic, 0x4216e707e0761a45u64),
        (AlgoKind::Random, 0x3639a1a3250e8fd7),
    ];
    for (algo, want) in golden {
        let mut s = Scenario::quick(24, algo, 300);
        s.faults = FaultPlan {
            loss: Some(PacketLoss {
                base: 0.05,
                burst: Some(BurstCfg {
                    mean_quiet: 40.0,
                    mean_burst: 10.0,
                    burst_loss: 0.6,
                }),
            }),
            crashes: vec![CrashEvent {
                node: NodeId(3),
                at: SimTime::from_secs(100),
                restart_after: Some(SimDuration::from_secs(60)),
            }],
            link_flaps: Some(LinkFlaps {
                period: SimDuration::from_secs(90),
                down: SimDuration::from_secs(5),
            }),
            jitter: Some(JitterSpikes {
                period: SimDuration::from_secs(70),
                width: SimDuration::from_secs(10),
                extra_delay: SimDuration::from_millis(40),
            }),
        };
        let got = fp(s, 13);
        assert_eq!(got, want, "faults {algo}: 0x{got:016x} != 0x{want:016x}");
    }
}

#[test]
fn group_mobility_with_battery_matches_pre_refactor_fingerprint() {
    let mut s = Scenario::quick(24, AlgoKind::Regular, 200);
    s.mobility = MobilityKind::Groups {
        n_groups: 4,
        max_speed: 1.0,
        group_radius: 8.0,
    };
    s.battery_mj = Some(400.0);
    let want = 0xa3bdaf4ba98a585au64;
    let got = fp(s, 21);
    assert_eq!(got, want, "groups+battery: 0x{got:016x} != 0x{want:016x}");
}
