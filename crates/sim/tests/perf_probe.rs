//! Manual perf probe (run with --ignored).
use manet_sim::{Scenario, World};
use p2p_core::AlgoKind;

#[test]
#[ignore = "manual timing probe"]
fn time_scaling() {
    let start = std::time::Instant::now();
    let r = World::new(Scenario::paper(50, AlgoKind::Regular), 1).run();
    eprintln!(
        "50 nodes, 3600s: {:.2?}, {} events",
        start.elapsed(),
        r.events
    );
    for secs in [300u64, 900] {
        let start = std::time::Instant::now();
        let r = World::new(Scenario::quick(150, AlgoKind::Regular, secs), 1).run();
        eprintln!(
            "150 nodes, {secs}s sim: {:.2?}, {} events",
            start.elapsed(),
            r.events
        );
    }
}
