//! The adversarial corpus and its pinned golden aggregates.
//!
//! Every `.scn` file under `corpus/` must (a) parse, validate and
//! round-trip through the canonical renderer, and (b) — when it carries
//! an `expect` line — reproduce that line's aggregates *exactly* when
//! its replications are re-run: the FNV fold of the per-replication
//! fingerprints plus the summed query/answer/frame counts. A mismatch
//! means simulation behaviour changed; either the change is a bug, or
//! the corpus must be deliberately re-pinned:
//!
//! ```text
//! SCN_REPIN=1 cargo test --release -p manet-sim --test corpus_golden --offline
//! ```
//!
//! Re-pinning rewrites each file's `expect` line in place (debug and
//! release builds produce identical numbers — the simulation is pure
//! integer-time arithmetic on both).

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

use manet_sim::{measure_corpus, parse_scn, render_expect, render_scn, Scenario, ScnFile, World};
use p2p_core::AlgoKind;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../corpus")
}

/// Load every corpus file, sorted by name, panicking with the file name
/// and positioned parse error on any failure.
fn load_corpus() -> Vec<(PathBuf, ScnFile)> {
    let mut paths: Vec<PathBuf> = fs::read_dir(corpus_dir())
        .expect("corpus/ directory exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "scn"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "corpus/ has no .scn files");
    paths
        .into_iter()
        .map(|p| {
            let text = fs::read_to_string(&p).expect("readable scenario file");
            let file = parse_scn(&text).unwrap_or_else(|e| panic!("{}: {e}", p.display()));
            (p, file)
        })
        .collect()
}

#[test]
fn corpus_parses_validates_and_round_trips() {
    for (path, file) in load_corpus() {
        let stem = path.file_stem().unwrap().to_string_lossy();
        assert_eq!(
            file.name,
            stem,
            "{}: scenario name must match the file name",
            path.display()
        );
        // Canonical render → parse is the identity on every corpus file.
        let reparsed = parse_scn(&render_scn(&file))
            .unwrap_or_else(|e| panic!("{}: canonical form re-parse: {e}", path.display()));
        assert_eq!(reparsed, file, "{}: round-trip drift", path.display());
    }
}

#[test]
fn corpus_covers_the_adversary_taxonomy() {
    let corpus = load_corpus();
    assert!(
        corpus.len() >= 10,
        "corpus must stay broad: {} files",
        corpus.len()
    );
    let roles: BTreeSet<&'static str> = corpus
        .iter()
        .flat_map(|(_, f)| f.scenario.adversaries.iter().map(|a| a.role.name()))
        .collect();
    for want in [
        "black-hole",
        "grey-hole",
        "rreq-amplifier",
        "query-flooder",
        "selfish",
    ] {
        assert!(roles.contains(want), "no corpus scenario uses {want}");
    }
    let algos: BTreeSet<&'static str> =
        corpus.iter().map(|(_, f)| f.scenario.algo.name()).collect();
    assert!(algos.len() >= 3, "corpus exercises too few algorithms");
}

/// The tier-1 golden gate: every pinned `expect` line reproduces
/// exactly. `SCN_REPIN=1` rewrites the pins instead of checking them.
#[test]
fn corpus_reproduces_pinned_aggregates() {
    let repin = std::env::var_os("SCN_REPIN").is_some();
    let mut failures = Vec::new();
    for (path, file) in load_corpus() {
        let (reps, seed) = file.expect.map_or((2, 7), |e| (e.reps, e.seed));
        let got = measure_corpus(&file.scenario, reps, seed, 2);
        if repin {
            let text = fs::read_to_string(&path).unwrap();
            let mut kept: String = text
                .lines()
                .filter(|l| !l.trim_start().starts_with("expect"))
                .fold(String::new(), |mut s, l| {
                    s.push_str(l);
                    s.push('\n');
                    s
                });
            kept.push_str(&render_expect(&got));
            kept.push('\n');
            fs::write(&path, kept).unwrap();
            println!("re-pinned {}: {}", file.name, render_expect(&got));
            continue;
        }
        let Some(want) = file.expect else {
            panic!(
                "{}: no expect line — pin it with \
                 SCN_REPIN=1 cargo test --release -p manet-sim --test corpus_golden",
                path.display()
            );
        };
        if got != want {
            failures.push(format!(
                "{name}:\n  pinned   {p}\n  measured {m}",
                name = file.name,
                p = render_expect(&want),
                m = render_expect(&got),
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "corpus aggregates drifted:\n{}",
        failures.join("\n")
    );
}

/// The bit-identity bridge: the DSL is not a parallel world. The
/// adversary-free baseline file *is* the programmatic scenario the
/// refactor-equivalence fingerprints were captured on, and one run of it
/// reproduces that suite's golden fingerprint.
#[test]
fn regular_baseline_is_bit_identical_to_programmatic_quick() {
    let text = fs::read_to_string(corpus_dir().join("REGULAR_BASELINE.scn")).unwrap();
    let file = parse_scn(&text).unwrap();
    assert_eq!(file.scenario, Scenario::quick(30, AlgoKind::Regular, 240));
    let fp = World::new(file.scenario, 7).run().fingerprint();
    assert_eq!(
        fp, 0xcbaafd99708ae6d9,
        "scenario-file run diverged from the pre-refactor golden fingerprint"
    );
}
