//! Property tests for the `.scn` scenario DSL.
//!
//! Two contracts pinned over randomly generated scenario files:
//!
//! 1. **Round-trip identity** — for any valid [`ScnFile`],
//!    `parse_scn(&render_scn(&f)) == Ok(f)`. The renderer writes the
//!    canonical form and the parser reads it back bit-for-bit, including
//!    exact `f64` values, durations at tick precision, every fault and
//!    adversary, and the `expect` block.
//! 2. **Positioned diagnostics** — any corruption of a rendered file
//!    fails to parse with a 1-indexed line within the file, a column
//!    of at least one, and a non-empty rendered message.

use manet_des::{NodeId, SimDuration, SimTime};
use manet_sim::{
    parse_scn, render_scn, Adversary, AdversaryRole, BurstCfg, ChurnCfg, CrashEvent, Expect,
    JitterSpikes, LinkFlaps, MobilityKind, PacketLoss, Scenario, ScnFile,
};
use manet_testkit::{any_u64, prop_assert, prop_assert_eq, properties, Gen, Strategy};
use p2p_core::AlgoKind;

/// Generates valid scenario files covering every directive the DSL
/// knows. All numeric fields come from finite grids, so every generated
/// scenario passes `Scenario::check`; the renderer/parser must then
/// preserve each of them exactly. No shrinking — a failing file is
/// already small enough to eyeball in rendered form.
#[derive(Clone, Copy, Debug)]
struct AnyScn;

impl Strategy for AnyScn {
    type Value = ScnFile;

    fn generate(&self, g: &mut Gen) -> ScnFile {
        let r = g.rng();
        let n_nodes = 5 + r.below(30) as usize;
        let algo = *r.choose(&AlgoKind::ALL);
        let mut s = Scenario::paper(n_nodes, algo);
        s.duration = SimDuration::from_secs(60 + r.below(540));
        s.join_window = SimDuration::from_secs(5 + r.below(25));
        // >= 0.75 keeps nodes 0..=2 members, so adversary placement below
        // never trips the membership check.
        s.member_fraction = (15 + r.below(6)) as f64 / 20.0;
        s.area_side = (5 + r.below(20)) as f64 * 10.0;
        s.qualifier_range = (1, 1 + r.below(200) as u32);
        let speed = (1 + r.below(40)) as f64 / 4.0;
        s.mobility = match r.below(5) {
            0 => MobilityKind::Waypoint {
                max_speed: speed,
                max_pause: r.below(120) as f64,
            },
            1 => MobilityKind::Walk { max_speed: speed },
            2 => MobilityKind::GaussMarkov,
            3 => MobilityKind::Groups {
                n_groups: 1 + r.below(4) as usize,
                max_speed: speed,
                group_radius: (1 + r.below(10)) as f64,
            },
            _ => MobilityKind::Stationary,
        };
        if r.chance(0.3) {
            s.battery_mj = Some((100 + r.below(900)) as f64);
        }
        if r.chance(0.3) {
            s.churn = Some(ChurnCfg {
                mean_uptime: (30 + r.below(90)) as f64,
                mean_downtime: (10 + r.below(50)) as f64,
            });
        }
        if r.chance(0.25) {
            s.smallworld_sample = Some(SimDuration::from_secs(30 + r.below(90)));
        }
        s.radio.loss_prob = r.below(30) as f64 / 100.0;
        s.radio.fuzz = r.below(40) as f64 / 100.0;
        s.query.ttl = 1 + r.below(10) as u8;
        if r.chance(0.3) {
            s.query.fetch_bytes = Some(256 * (1 + r.below(16)) as u32);
        }
        if r.chance(0.3) {
            s.aodv.hello_interval = Some(SimDuration::from_secs(1 + r.below(5)));
        }
        if r.chance(0.3) {
            let burst = r.chance(0.5).then(|| BurstCfg {
                mean_quiet: (20 + r.below(60)) as f64,
                mean_burst: (5 + r.below(20)) as f64,
                burst_loss: (30 + r.below(60)) as f64 / 100.0,
            });
            s.faults.loss = Some(PacketLoss {
                base: r.below(20) as f64 / 100.0,
                burst,
            });
        }
        for i in 0..r.below(3) as u32 {
            s.faults.crashes.push(CrashEvent {
                node: NodeId(i),
                at: SimTime::from_secs(10 + 7 * i as u64),
                restart_after: r
                    .chance(0.5)
                    .then(|| SimDuration::from_secs(10 + r.below(50))),
            });
        }
        if r.chance(0.25) {
            s.faults.link_flaps = Some(LinkFlaps {
                period: SimDuration::from_secs(30 + r.below(60)),
                down: SimDuration::from_secs(1 + r.below(10)),
            });
        }
        if r.chance(0.25) {
            s.faults.jitter = Some(JitterSpikes {
                period: SimDuration::from_secs(30 + r.below(60)),
                width: SimDuration::from_secs(1 + r.below(10)),
                extra_delay: SimDuration::from_millis(5 + r.below(100)),
            });
        }
        for node in 0..r.below(4) as u32 {
            let role = match r.below(5) {
                0 => AdversaryRole::BlackHole,
                1 => AdversaryRole::GreyHole {
                    drop_nth: 2 + r.below(6) as u32,
                },
                2 => AdversaryRole::RreqAmplifier {
                    factor: 2 + r.below(7) as u8,
                },
                3 => AdversaryRole::QueryFlooder {
                    period: SimDuration::from_secs(1 + r.below(20)),
                },
                _ => AdversaryRole::Selfish,
            };
            s.adversaries.push(Adversary {
                node: NodeId(node),
                role,
            });
        }
        if r.chance(0.2) {
            // The opt-out form: must round-trip through `obs off` exactly.
            s.obs = manet_obs::ObsConfig::disabled();
        } else if r.chance(0.25) {
            s.obs.sample_period_secs = (1 + r.below(20)) as f64;
            s.obs.recorder_capacity = 64 * (1 + r.below(63)) as usize;
        }
        let expect = r.chance(0.5).then(|| Expect {
            reps: 1 + r.below(4) as usize,
            seed: r.next_u64(),
            fingerprint: r.next_u64(),
            queries: r.below(100_000),
            answers: r.below(100_000),
            frames: r.below(10_000_000),
        });
        let name = format!("PROP_{}", r.below(1_000_000));
        ScnFile {
            name,
            scenario: s,
            expect,
        }
    }
}

properties! {
    config = manet_testkit::Config::cases(64);

    /// Rendering and re-parsing any valid scenario file is the identity.
    fn render_parse_round_trip(file in AnyScn) {
        let text = render_scn(&file);
        let reparsed = parse_scn(&text);
        prop_assert_eq!(reparsed, Ok(file.clone()), "canonical text:\n{}", text);
    }

    /// Corrupting a valid file always fails with an in-bounds 1-indexed
    /// line, a positive column, and a non-empty positioned message.
    fn parse_errors_carry_positions(file in AnyScn, pick in any_u64()) {
        let text = render_scn(&file);
        let n_lines = text.lines().count();
        prop_assert!(n_lines >= 6, "canonical render is never this short");

        // Corruption 1: splice in an unknown directive.
        let mut lines: Vec<&str> = text.lines().collect();
        lines.insert(pick as usize % (n_lines + 1), "frobnicate all the things");
        let e = parse_scn(&lines.join("\n")).unwrap_err();
        prop_assert!(e.line >= 1 && e.line <= n_lines + 1, "line {} of {}", e.line, n_lines + 1);
        prop_assert!(e.col >= 1);
        prop_assert!(e.to_string().starts_with("line "), "got: {}", e);

        // Corruption 2: garble the head token of an existing line.
        let at = pick as usize % n_lines;
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        lines[at] = format!("bogus-{}", lines[at]);
        let e = parse_scn(&lines.join("\n")).unwrap_err();
        prop_assert!(e.line >= 1 && e.line <= n_lines);
        prop_assert!(e.col >= 1);
        prop_assert!(!e.to_string().is_empty());
    }
}
