//! Whole-sim scheduler equivalence: the calendar queue must be
//! unobservable.
//!
//! The des-level property test proves both backends pop identical
//! sequences under random workloads; these tests close the loop at the
//! system level — a full replication of every algorithm produces a
//! bit-identical [`RunResult`] whichever scheduler runs the future-event
//! list, and the fingerprint is stable across repeated runs (so a regression
//! in either backend cannot hide behind nondeterminism).

use manet_des::SchedulerKind;
use manet_sim::{Scenario, World};
use p2p_core::AlgoKind;

fn fingerprint(algo: AlgoKind, seed: u64, kind: SchedulerKind) -> u64 {
    let s = Scenario::quick(30, algo, 240);
    World::with_scheduler(s, seed, kind).run().fingerprint()
}

#[test]
fn run_results_are_bit_identical_across_schedulers_for_all_algorithms() {
    for algo in AlgoKind::ALL {
        let heap = fingerprint(algo, 7, SchedulerKind::Heap);
        let cal = fingerprint(algo, 7, SchedulerKind::Calendar);
        assert_eq!(heap, cal, "{algo}: schedulers diverged");
    }
}

#[test]
fn fingerprints_are_reproducible_and_seed_sensitive() {
    let a = fingerprint(AlgoKind::Regular, 7, SchedulerKind::Calendar);
    let b = fingerprint(AlgoKind::Regular, 7, SchedulerKind::Calendar);
    let c = fingerprint(AlgoKind::Regular, 8, SchedulerKind::Calendar);
    assert_eq!(a, b, "same seed must reproduce the same fingerprint");
    assert_ne!(a, c, "different seeds must differ");
}

#[test]
fn equivalence_holds_under_churn_and_faults() {
    // Churn cancels and reschedules timers heavily — the workload that
    // exercises lazy cancellation, compaction and cursor rewinds hardest.
    let mut s = Scenario::quick(24, AlgoKind::Hybrid, 300);
    s.churn = Some(manet_sim::ChurnCfg {
        mean_uptime: 60.0,
        mean_downtime: 30.0,
    });
    let heap = World::with_scheduler(s.clone(), 11, SchedulerKind::Heap)
        .run()
        .fingerprint();
    let cal = World::with_scheduler(s, 11, SchedulerKind::Calendar)
        .run()
        .fingerprint();
    assert_eq!(heap, cal, "churn workload diverged across schedulers");
}
