//! Sharded-execution determinism gates.
//!
//! The sharded path defines partition-invariant semantics (per-sender
//! radio RNG streams, intrinsic event keys, replicated subsystem state):
//! the *aggregate metrics* of a run must be identical whatever the shard
//! count and whatever the thread count. `events` and `peak_queue_depth`
//! are execution measures (replicated subsystem events count once per
//! shard) and are excluded from cross-shard-count comparison, but must
//! still be identical for reruns at a fixed shard count.

use manet_des::{NodeId, SimDuration};
use manet_sim::{Adversary, AdversaryRole, ChurnCfg, ObsConfig, RunResult, Scenario, ShardedWorld};
use p2p_core::AlgoKind;

/// The churn + adversary stress shape shared by the partition-invariance
/// tests: Hybrid overlay, a black hole, and a query flooder.
fn churn_adversary_scenario() -> Scenario {
    let mut s = Scenario::quick(30, AlgoKind::Hybrid, 180);
    s.churn = Some(ChurnCfg {
        mean_uptime: 60.0,
        mean_downtime: 20.0,
    });
    s.adversaries = vec![
        Adversary {
            node: NodeId(2),
            role: AdversaryRole::BlackHole,
        },
        Adversary {
            node: NodeId(4),
            role: AdversaryRole::QueryFlooder {
                period: SimDuration::from_secs(10),
            },
        },
    ];
    s
}

/// Everything partition-invariant about a run, collapsed for comparison.
fn semantic_digest(r: &RunResult) -> (u64, u64, u64, Vec<u64>, [usize; 5], u64, u64, u64) {
    use manet_metrics::MsgKind;
    let mut counters = Vec::new();
    for kind in MsgKind::ALL {
        counters.extend(r.counters.column(kind));
    }
    (
        r.queries_issued,
        r.answers_received,
        r.phy_total.frames_sent,
        counters,
        r.roles,
        r.conns_established,
        r.conns_closed,
        r.energy_mj
            .iter()
            .map(|e| e.to_bits())
            .fold(0u64, |a, b| (a ^ b).wrapping_mul(0x0000_0100_0000_01b3)),
    )
}

#[test]
fn sharded_runs_are_reproducible() {
    let s = Scenario::quick(24, AlgoKind::Regular, 120);
    let a = ShardedWorld::new(s.clone(), 11, 2).run(1);
    let b = ShardedWorld::new(s, 11, 2).run(1);
    assert_eq!(a.fingerprint(), b.fingerprint(), "rerun diverged");
    assert!(a.events > 0);
}

#[test]
fn thread_count_does_not_change_results() {
    let s = Scenario::quick(24, AlgoKind::Regular, 120);
    let lockstep = ShardedWorld::new(s.clone(), 5, 4).run(1);
    let threaded = ShardedWorld::new(s, 5, 4).run(4);
    assert_eq!(
        lockstep.fingerprint(),
        threaded.fingerprint(),
        "thread count changed a sharded run"
    );
}

#[test]
fn shard_count_preserves_aggregate_metrics() {
    let s = Scenario::quick(30, AlgoKind::Regular, 180);
    let runs: Vec<RunResult> = [1usize, 2, 4]
        .iter()
        .map(|&r| ShardedWorld::new(s.clone(), 7, r).run(1))
        .collect();
    assert!(runs[0].queries_issued > 0, "no traffic to compare");
    assert!(runs[0].phy_total.frames_sent > 0);
    let reference = semantic_digest(&runs[0]);
    for (i, r) in runs.iter().enumerate().skip(1) {
        assert_eq!(
            semantic_digest(r),
            reference,
            "shard count {} diverged from single-shard semantics",
            [1, 2, 4][i]
        );
    }
}

#[test]
fn shard_count_preserves_aggregates_under_churn_and_adversaries() {
    let s = churn_adversary_scenario();
    let one = ShardedWorld::new(s.clone(), 13, 1).run(1);
    let four = ShardedWorld::new(s, 13, 4).run(1);
    assert_eq!(
        semantic_digest(&one),
        semantic_digest(&four),
        "churn + adversaries broke partition invariance"
    );
}

#[test]
fn merged_obs_registries_are_shard_and_thread_count_invariant() {
    // Sub events are replicated with identical (time, key) in every shard
    // and pops are (time, key)-ordered, so every shard cuts its series at
    // the same logical boundary; counters are owner-gated (the replicated
    // Sub dispatch slot counts only on shard 0). The merged registry must
    // therefore be byte-identical whatever the partitioning or threading.
    let s = churn_adversary_scenario();
    assert!(s.obs.enabled, "obs is on by default");
    let reference = ShardedWorld::new(s.clone(), 13, 1).run(1).obs;
    assert!(
        reference
            .registry
            .counter_by_name("des.events_popped")
            .unwrap_or(0)
            > 0,
        "no observed work to compare"
    );
    for shards in [1usize, 2, 4] {
        for threads in [1usize, 4] {
            let r = ShardedWorld::new(s.clone(), 13, shards).run(threads);
            assert_eq!(
                r.obs.registry, reference.registry,
                "merged registry diverged at shards={shards} threads={threads}"
            );
        }
    }
}

#[test]
fn sharded_observed_runs_are_bit_identical_to_unobserved() {
    let on = Scenario::quick(24, AlgoKind::Regular, 120);
    let mut off = on.clone();
    off.obs = ObsConfig::disabled();
    let seen = ShardedWorld::new(on, 11, 4).run(1);
    let plain = ShardedWorld::new(off, 11, 4).run(1);
    assert_eq!(
        plain.fingerprint(),
        seen.fingerprint(),
        "enabling the sink changed a sharded run"
    );
    assert_eq!(plain.events, seen.events);
    assert!(seen.obs.enabled(), "merged report missing");
    assert!(!plain.obs.enabled(), "disabled sink must leave no report");
}
