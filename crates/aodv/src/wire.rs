//! Byte-exact codec for [`Msg`], generic over the payload.
//!
//! The DES never serializes — frames travel as structs and only
//! [`Msg::wire_size`] matters to the radio model. The real-time substrate
//! puts frames on actual UDP sockets, so here is the real encoding:
//! little-endian fields in declaration order, one leading tag byte per
//! variant, and the [`TraceCtx`](manet_des::TraceCtx) as a
//! presence-flagged trailer (one byte
//! when absent — tracing stays cheap on the wire too).
//!
//! The encoded length is deliberately **not** [`Msg::wire_size`]: that
//! number models an idealized RFC 3561 packet for the radio's delay and
//! energy accounting, while this codec favours simplicity and explicit
//! validation. Nothing compares the two.
//!
//! Decoding a corrupted buffer returns a typed [`WireError`] — truncation,
//! unknown tags and trailing garbage are expected inputs on a socket,
//! never panics.

use manet_des::wire::{put_ctx, put_u16, put_u32, put_u8, read_ctx};
use manet_des::{NodeId, WireError, WireReader};

use crate::msg::{Data, Flood, Hello, Msg, Payload, Rerr, Rrep, Rreq};

/// A payload that can cross a real wire, not just report its modelled
/// size. Implemented by the stack-level payload union; kept separate from
/// [`Payload`] so DES-only payload types (test blobs, instrumentation
/// stand-ins) need no codec.
pub trait WirePayload: Payload {
    /// Append the encoded payload.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decode a payload written by [`encode`](WirePayload::encode). The
    /// payload must be self-delimiting: the frame's trace-context trailer
    /// follows it directly.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>
    where
        Self: Sized;
}

const TAG_RREQ: u8 = 1;
const TAG_RREP: u8 = 2;
const TAG_RERR: u8 = 3;
const TAG_DATA: u8 = 4;
const TAG_FLOOD: u8 = 5;
const TAG_HELLO: u8 = 6;

/// Append the encoded frame (tag byte, fields, trace-context trailer).
pub fn encode_msg<P: WirePayload>(msg: &Msg<P>, buf: &mut Vec<u8>) {
    match msg {
        Msg::Rreq(m) => {
            put_u8(buf, TAG_RREQ);
            put_u32(buf, m.origin.0);
            put_u32(buf, m.origin_seq);
            put_u32(buf, m.rreq_id);
            put_u32(buf, m.dest.0);
            match m.dest_seq {
                Some(seq) => {
                    put_u8(buf, 1);
                    put_u32(buf, seq);
                }
                None => put_u8(buf, 0),
            }
            put_u8(buf, m.hop_count);
            put_u8(buf, m.ttl);
            put_ctx(buf, m.ctx);
        }
        Msg::Rrep(m) => {
            put_u8(buf, TAG_RREP);
            put_u32(buf, m.dest.0);
            put_u32(buf, m.dest_seq);
            put_u32(buf, m.origin.0);
            put_u8(buf, m.hop_count);
            put_ctx(buf, m.ctx);
        }
        Msg::Rerr(m) => {
            put_u8(buf, TAG_RERR);
            put_u16(buf, m.unreachable.len() as u16);
            for &(node, seq) in &m.unreachable {
                put_u32(buf, node.0);
                put_u32(buf, seq);
            }
            put_ctx(buf, m.ctx);
        }
        Msg::Data(m) => {
            put_u8(buf, TAG_DATA);
            put_u32(buf, m.src.0);
            put_u32(buf, m.dst.0);
            put_u8(buf, m.hops);
            m.payload.encode(buf);
            put_ctx(buf, m.ctx);
        }
        Msg::Flood(m) => {
            put_u8(buf, TAG_FLOOD);
            put_u32(buf, m.origin.0);
            put_u32(buf, m.flood_id);
            put_u8(buf, m.ttl);
            put_u8(buf, m.hops);
            m.payload.encode(buf);
            put_ctx(buf, m.ctx);
        }
        Msg::Hello(m) => {
            put_u8(buf, TAG_HELLO);
            put_u32(buf, m.seq);
        }
    }
}

/// Decode one frame written by [`encode_msg`]. Does not require the
/// reader to be exhausted — the caller owning the enclosing frame calls
/// [`WireReader::finish`].
pub fn decode_msg<P: WirePayload>(r: &mut WireReader<'_>) -> Result<Msg<P>, WireError> {
    match r.u8()? {
        TAG_RREQ => {
            let origin = NodeId(r.u32()?);
            let origin_seq = r.u32()?;
            let rreq_id = r.u32()?;
            let dest = NodeId(r.u32()?);
            let dest_seq = if r.flag("rreq dest_seq presence")? {
                Some(r.u32()?)
            } else {
                None
            };
            let hop_count = r.u8()?;
            let ttl = r.u8()?;
            let ctx = read_ctx(r)?;
            Ok(Msg::Rreq(Rreq {
                origin,
                origin_seq,
                rreq_id,
                dest,
                dest_seq,
                hop_count,
                ttl,
                ctx,
            }))
        }
        TAG_RREP => Ok(Msg::Rrep(Rrep {
            dest: NodeId(r.u32()?),
            dest_seq: r.u32()?,
            origin: NodeId(r.u32()?),
            hop_count: r.u8()?,
            ctx: read_ctx(r)?,
        })),
        TAG_RERR => {
            let n = r.u16()? as usize;
            let mut unreachable = Vec::with_capacity(n.min(256));
            for _ in 0..n {
                let node = NodeId(r.u32()?);
                let seq = r.u32()?;
                unreachable.push((node, seq));
            }
            let ctx = read_ctx(r)?;
            Ok(Msg::Rerr(Rerr { unreachable, ctx }))
        }
        TAG_DATA => {
            let src = NodeId(r.u32()?);
            let dst = NodeId(r.u32()?);
            let hops = r.u8()?;
            let payload = P::decode(r)?;
            let ctx = read_ctx(r)?;
            Ok(Msg::Data(Data {
                src,
                dst,
                hops,
                payload,
                ctx,
            }))
        }
        TAG_FLOOD => {
            let origin = NodeId(r.u32()?);
            let flood_id = r.u32()?;
            let ttl = r.u8()?;
            let hops = r.u8()?;
            let payload = P::decode(r)?;
            let ctx = read_ctx(r)?;
            Ok(Msg::Flood(Flood {
                origin,
                flood_id,
                ttl,
                hops,
                payload,
                ctx,
            }))
        }
        TAG_HELLO => Ok(Msg::Hello(Hello { seq: r.u32()? })),
        tag => Err(WireError::BadTag {
            what: "aodv frame",
            tag,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_des::TraceCtx;

    /// A minimal self-delimiting payload for codec tests.
    #[derive(Clone, Debug, PartialEq)]
    struct Blob(u32);

    impl Payload for Blob {
        fn wire_size(&self) -> u32 {
            4
        }
    }

    impl WirePayload for Blob {
        fn encode(&self, buf: &mut Vec<u8>) {
            put_u32(buf, self.0);
        }
        fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
            Ok(Blob(r.u32()?))
        }
    }

    fn round_trip(msg: Msg<Blob>) {
        let mut buf = Vec::new();
        encode_msg(&msg, &mut buf);
        let mut r = WireReader::new(&buf);
        let back = decode_msg::<Blob>(&mut r).expect("decodes");
        r.finish().expect("fully consumed");
        assert_eq!(back, msg);
    }

    #[test]
    fn every_variant_round_trips() {
        round_trip(Msg::Rreq(Rreq {
            origin: NodeId(1),
            origin_seq: 9,
            rreq_id: 4,
            dest: NodeId(2),
            dest_seq: Some(17),
            hop_count: 3,
            ttl: 7,
            ctx: TraceCtx::root(5, 1),
        }));
        round_trip(Msg::Rreq(Rreq {
            origin: NodeId(1),
            origin_seq: 0,
            rreq_id: 0,
            dest: NodeId(2),
            dest_seq: None,
            hop_count: 0,
            ttl: 1,
            ctx: TraceCtx::NONE,
        }));
        round_trip(Msg::Rrep(Rrep {
            dest: NodeId(2),
            dest_seq: 11,
            origin: NodeId(1),
            hop_count: 2,
            ctx: TraceCtx::root(8, 2).child(3),
        }));
        round_trip(Msg::Rerr(Rerr {
            unreachable: vec![(NodeId(3), 1), (NodeId(9), u32::MAX)],
            ctx: TraceCtx::NONE,
        }));
        round_trip(Msg::Data(Data {
            src: NodeId(0),
            dst: NodeId(7),
            hops: 4,
            payload: Blob(0xFACE),
            ctx: TraceCtx::root(1, 1),
        }));
        round_trip(Msg::Flood(Flood {
            origin: NodeId(5),
            flood_id: 77,
            ttl: 6,
            hops: 1,
            payload: Blob(12),
            ctx: TraceCtx::NONE,
        }));
        round_trip(Msg::Hello(Hello { seq: 123 }));
    }

    #[test]
    fn unknown_tag_is_typed() {
        let mut r = WireReader::new(&[0x7F]);
        assert_eq!(
            decode_msg::<Blob>(&mut r),
            Err(WireError::BadTag {
                what: "aodv frame",
                tag: 0x7F
            })
        );
    }

    #[test]
    fn truncated_frames_error_cleanly() {
        let msg = Msg::Data(Data {
            src: NodeId(0),
            dst: NodeId(7),
            hops: 4,
            payload: Blob(9),
            ctx: TraceCtx::root(2, 2),
        });
        let mut buf = Vec::new();
        encode_msg(&msg, &mut buf);
        // Every proper prefix must fail with a typed error, never panic.
        for cut in 0..buf.len() {
            let mut r = WireReader::new(&buf[..cut]);
            let got = decode_msg::<Blob>(&mut r).and_then(|_| r.finish());
            assert!(got.is_err(), "prefix of {cut} bytes decoded successfully");
        }
    }
}
