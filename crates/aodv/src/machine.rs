//! The per-node AODV state machine.
//!
//! [`Aodv`] is a *pure* protocol engine: every entry point takes the current
//! time plus an input (an upper-layer send, a received frame, a timer tick,
//! a link-layer failure) and returns a list of [`Action`]s for the world to
//! execute. It owns no clock and performs no I/O, which is what makes it
//! unit-testable on virtual topologies (see [`crate::testkit`]).

use std::collections::{BTreeMap, HashMap};

use manet_des::{NodeId, SimTime, TraceCtx};

use crate::cfg::AodvCfg;
use crate::msg::{seq_newer, Data, Flood, Hello, Msg, Payload, Rerr, Rrep, Rreq};
use crate::table::RouteTable;

/// What the routing machine asks the world to do.
#[derive(Clone, Debug, PartialEq)]
pub enum Action<P> {
    /// Put `msg` on the air for every neighbor (link-layer broadcast).
    Broadcast(Msg<P>),
    /// Transmit `msg` to the specific neighbor `to` (link-layer unicast).
    Unicast { to: NodeId, msg: Msg<P> },
    /// A routed payload arrived for this node; hand it up.
    Deliver {
        /// The originating node.
        src: NodeId,
        /// Ad-hoc hops the payload travelled.
        hops: u8,
        /// The payload itself.
        payload: P,
        /// Causal context the payload travelled with.
        ctx: TraceCtx,
    },
    /// A controlled-broadcast payload reached this node; hand it up.
    DeliverFlood {
        /// The flooding node.
        origin: NodeId,
        /// Ad-hoc hops from the origin to here.
        hops: u8,
        /// The payload itself.
        payload: P,
        /// Causal context the flood travelled with.
        ctx: TraceCtx,
    },
    /// Route discovery for `dst` failed after all retries.
    Unreachable {
        /// The destination that could not be reached.
        dst: NodeId,
        /// Payloads that were waiting for the route, in send order.
        dropped: Vec<P>,
        /// Causal context of the payload that opened the discovery.
        ctx: TraceCtx,
    },
}

/// Protocol counters for one node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AodvStats {
    /// Route discoveries originated (attempts, including ring retries).
    pub rreqs_originated: u64,
    /// RREQs rebroadcast on behalf of others.
    pub rreqs_forwarded: u64,
    /// RREPs generated (as destination or intermediate).
    pub rreps_sent: u64,
    /// RERRs transmitted.
    pub rerrs_sent: u64,
    /// Data packets forwarded for others.
    pub data_forwarded: u64,
    /// Data packets dropped (no route at an intermediate hop, buffer
    /// overflow, or discovery failure).
    pub data_dropped: u64,
    /// Controlled broadcasts originated.
    pub floods_originated: u64,
    /// Controlled broadcasts re-forwarded.
    pub floods_forwarded: u64,
    /// HELLO beacons transmitted.
    pub hellos_sent: u64,
    /// RREQs dropped by the duplicate cache (already-seen `(origin, id)`).
    pub rreq_dup_dropped: u64,
    /// Controlled broadcasts dropped by the per-node broadcast cache.
    pub flood_dup_dropped: u64,
}

/// An in-progress route discovery.
#[derive(Clone, Debug)]
struct Discovery<P> {
    /// 0-based attempt counter (drives the expanding ring).
    attempt: u8,
    /// When the current attempt times out.
    deadline: SimTime,
    /// Payloads waiting for the route, each with the context it was sent
    /// under (later sends may belong to a different query than the one
    /// that opened the discovery).
    queue: Vec<(P, TraceCtx)>,
    /// Context of the payload that opened this discovery: every RREQ
    /// attempt (including ring retries) is attributed to it, so the
    /// route-acquisition cost lands on the query that paid for it.
    ctx: TraceCtx,
}

/// The AODV engine for one node. `P` is the upper-layer payload type.
#[derive(Clone, Debug)]
pub struct Aodv<P: Payload> {
    id: NodeId,
    cfg: AodvCfg,
    /// Own destination sequence number.
    seq: u32,
    next_rreq_id: u32,
    next_flood_id: u32,
    table: RouteTable,
    /// `(origin, rreq_id)` → cache expiry.
    rreq_seen: HashMap<(NodeId, u32), SimTime>,
    /// `(origin, flood_id)` → cache expiry (the paper's broadcast cache).
    flood_seen: HashMap<(NodeId, u32), SimTime>,
    /// Destinations under discovery (BTreeMap: deterministic timer order).
    pending: BTreeMap<NodeId, Discovery<P>>,
    /// Next housekeeping sweep.
    next_purge: SimTime,
    /// HELLO beaconing: when the next beacon is due (MAX when disabled).
    next_hello: SimTime,
    /// Last time each neighbor was heard (only populated when HELLOs are
    /// enabled; BTreeMap for deterministic expiry order).
    neighbors_heard: BTreeMap<NodeId, SimTime>,
    stats: AodvStats,
}

/// Housekeeping cadence.
const PURGE_PERIOD_SECS: u64 = 5;

impl<P: Payload> Aodv<P> {
    /// A fresh machine for node `id`.
    pub fn new(id: NodeId, cfg: AodvCfg) -> Self {
        cfg.validate();
        Aodv {
            id,
            cfg,
            seq: 0,
            next_rreq_id: 0,
            next_flood_id: 0,
            table: RouteTable::new(),
            rreq_seen: HashMap::new(),
            flood_seen: HashMap::new(),
            pending: BTreeMap::new(),
            next_purge: SimTime::from_secs(PURGE_PERIOD_SECS),
            next_hello: match cfg.hello_interval {
                Some(_) => SimTime::ZERO,
                None => SimTime::MAX,
            },
            neighbors_heard: BTreeMap::new(),
            stats: AodvStats::default(),
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Protocol counters so far.
    pub fn stats(&self) -> &AodvStats {
        &self.stats
    }

    /// Read access to the routing table (diagnostics, hop-distance queries).
    pub fn table(&self) -> &RouteTable {
        &self.table
    }

    /// Hop count of the current usable route to `dst`, if any. The overlay
    /// uses this as its ad-hoc distance estimate, as the paper's overlay
    /// uses ns-2's AODV hop counts.
    pub fn route_hops(&self, dst: NodeId, now: SimTime) -> Option<u8> {
        self.table.usable_route(dst, now).map(|e| e.hop_count)
    }

    /// Earliest instant at which [`tick`](Self::tick) needs to run.
    pub fn next_wake(&self) -> SimTime {
        self.pending
            .values()
            .map(|d| d.deadline)
            .min()
            .unwrap_or(SimTime::MAX)
            .min(self.next_purge)
            .min(self.next_hello)
    }

    /// Causal context of the wake reported by [`next_wake`](Self::next_wake):
    /// the waiting discovery's context when the earliest deadline is a
    /// route-discovery retry, [`TraceCtx::NONE`] when it is housekeeping or
    /// a HELLO beacon. Lets the simulation attribute the armed timer to the
    /// query that is waiting on it.
    pub fn next_wake_ctx(&self) -> TraceCtx {
        let mut best: Option<(SimTime, TraceCtx)> = None;
        for d in self.pending.values() {
            if best.is_none_or(|(t, _)| d.deadline < t) {
                best = Some((d.deadline, d.ctx));
            }
        }
        match best {
            Some((t, ctx)) if t <= self.next_purge && t <= self.next_hello => ctx,
            _ => TraceCtx::NONE,
        }
    }

    /// Record that `from` was just heard (HELLO-mode neighbor tracking).
    fn heard(&mut self, now: SimTime, from: NodeId) {
        if self.cfg.hello_interval.is_some() {
            self.neighbors_heard.insert(from, now);
        }
    }

    // ------------------------------------------------------------------
    // Upper-layer entry points
    // ------------------------------------------------------------------

    /// Send `payload` to `dst` under causal context `ctx`, discovering a
    /// route if necessary (pass [`TraceCtx::NONE`] when untraced).
    pub fn send(&mut self, now: SimTime, dst: NodeId, payload: P, ctx: TraceCtx) -> Vec<Action<P>> {
        let mut out = Vec::new();
        if dst == self.id {
            out.push(Action::Deliver {
                src: self.id,
                hops: 0,
                payload,
                ctx,
            });
            return out;
        }
        if let Some(route) = self.table.usable_route(dst, now) {
            let next_hop = route.next_hop;
            self.table.refresh(dst, self.cfg.active_route_lifetime, now);
            self.table
                .refresh(next_hop, self.cfg.active_route_lifetime, now);
            out.push(Action::Unicast {
                to: next_hop,
                msg: Msg::Data(Data {
                    src: self.id,
                    dst,
                    hops: 0,
                    payload,
                    ctx,
                }),
            });
            return out;
        }
        // No route: buffer and (maybe) open a discovery.
        match self.pending.get_mut(&dst) {
            Some(d) => {
                if d.queue.len() >= self.cfg.max_buffered_per_dest {
                    d.queue.remove(0);
                    self.stats.data_dropped += 1;
                }
                d.queue.push((payload, ctx));
            }
            None => {
                let mut d = Discovery {
                    attempt: 0,
                    deadline: SimTime::MAX,
                    queue: vec![(payload, ctx)],
                    ctx,
                };
                out.push(self.emit_rreq(now, dst, &mut d));
                self.pending.insert(dst, d);
            }
        }
        out
    }

    /// Originate a controlled hop-limited broadcast of `payload` reaching
    /// nodes up to `ttl` ad-hoc hops away (the paper's connect mechanism),
    /// under causal context `ctx`.
    pub fn flood(&mut self, now: SimTime, ttl: u8, payload: P, ctx: TraceCtx) -> Vec<Action<P>> {
        assert!(ttl >= 1, "flood ttl must be at least 1");
        let flood_id = self.next_flood_id;
        self.next_flood_id += 1;
        // Remember our own flood so echoes are dropped.
        self.flood_seen
            .insert((self.id, flood_id), now + self.cfg.flood_cache_lifetime);
        self.stats.floods_originated += 1;
        vec![Action::Broadcast(Msg::Flood(Flood {
            origin: self.id,
            flood_id,
            ttl,
            hops: 0,
            payload,
            ctx,
        }))]
    }

    /// Timer tick: retry/expire discoveries and purge soft state.
    pub fn tick(&mut self, now: SimTime) -> Vec<Action<P>> {
        let mut out = Vec::new();
        // Expired discovery attempts (BTreeMap order keeps this deterministic).
        let expired: Vec<NodeId> = self
            .pending
            .iter()
            .filter(|(_, d)| d.deadline <= now)
            .map(|(dst, _)| *dst)
            .collect();
        for dst in expired {
            let mut d = self.pending.remove(&dst).expect("key just listed");
            if d.attempt + 1 < self.cfg.max_attempts() {
                d.attempt += 1;
                out.push(self.emit_rreq(now, dst, &mut d));
                self.pending.insert(dst, d);
            } else {
                self.stats.data_dropped += d.queue.len() as u64;
                out.push(Action::Unreachable {
                    dst,
                    dropped: d.queue.into_iter().map(|(p, _)| p).collect(),
                    ctx: d.ctx,
                });
            }
        }
        if self.next_purge <= now {
            self.rreq_seen.retain(|_, &mut exp| exp > now);
            self.flood_seen.retain(|_, &mut exp| exp > now);
            self.table.purge(now, self.cfg.active_route_lifetime * 3);
            self.next_purge = now + manet_des::SimDuration::from_secs(PURGE_PERIOD_SECS);
        }
        if let Some(interval) = self.cfg.hello_interval {
            if self.next_hello <= now {
                self.stats.hellos_sent += 1;
                out.push(Action::Broadcast(Msg::Hello(Hello { seq: self.seq })));
                self.next_hello = now + interval;
            }
            // Expire neighbors that have gone silent (RFC 3561 §6.11).
            let deadline = interval * self.cfg.allowed_hello_loss as u64;
            let silent: Vec<NodeId> = self
                .neighbors_heard
                .iter()
                .filter(|(_, &heard)| heard + deadline <= now)
                .map(|(&n, _)| n)
                .collect();
            for nb in silent {
                self.neighbors_heard.remove(&nb);
                let broken = self.table.break_link(nb);
                if !broken.is_empty() {
                    self.stats.rerrs_sent += 1;
                    // Beacon silence is background upkeep: no query caused it.
                    out.push(Action::Broadcast(Msg::Rerr(Rerr {
                        unreachable: broken,
                        ctx: TraceCtx::NONE,
                    })));
                }
            }
        }
        out
    }

    /// The world failed to deliver `msg` to neighbor `to` (out of range):
    /// treat as a link break per RFC 3561 §6.11.
    pub fn on_unicast_failed(&mut self, now: SimTime, to: NodeId, msg: Msg<P>) -> Vec<Action<P>> {
        let mut out = Vec::new();
        let broken = self.table.break_link(to);
        // The error is attributed to whatever the failed frame was doing.
        let ctx = msg.ctx();
        if let Msg::Data(d) = msg {
            if d.src == self.id {
                // We originated it: buffer and rediscover under its context.
                out.extend(self.send(now, d.dst, d.payload, d.ctx));
            } else {
                self.stats.data_dropped += 1;
            }
        }
        if !broken.is_empty() {
            self.stats.rerrs_sent += 1;
            out.push(Action::Broadcast(Msg::Rerr(Rerr {
                unreachable: broken,
                ctx,
            })));
        }
        out
    }

    /// A frame arrived from neighbor `from`.
    pub fn on_frame(&mut self, now: SimTime, from: NodeId, msg: Msg<P>) -> Vec<Action<P>> {
        self.heard(now, from);
        match msg {
            Msg::Rreq(r) => self.handle_rreq(now, from, r),
            Msg::Rrep(r) => self.handle_rrep(now, from, r),
            Msg::Rerr(r) => self.handle_rerr(now, from, r),
            Msg::Data(d) => self.handle_data(now, from, d),
            Msg::Flood(f) => self.handle_flood(now, from, f),
            Msg::Hello(h) => {
                // A beacon proves the 1-hop link and refreshes the route.
                self.table.update(
                    from,
                    from,
                    1,
                    Some(h.seq),
                    self.cfg.active_route_lifetime,
                    now,
                );
                Vec::new()
            }
        }
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Build the RREQ for the discovery's current attempt and arm its timer.
    fn emit_rreq(&mut self, now: SimTime, dst: NodeId, d: &mut Discovery<P>) -> Action<P> {
        let ttl = self.cfg.ring_ttl(d.attempt);
        d.deadline = now + self.cfg.ring_timeout(ttl);
        self.seq = self.seq.wrapping_add(1);
        let rreq_id = self.next_rreq_id;
        self.next_rreq_id += 1;
        self.rreq_seen
            .insert((self.id, rreq_id), now + self.cfg.rreq_seen_lifetime);
        self.stats.rreqs_originated += 1;
        let dest_seq = self
            .table
            .entry(dst)
            .filter(|e| e.valid_seq)
            .map(|e| e.dest_seq);
        Action::Broadcast(Msg::Rreq(Rreq {
            origin: self.id,
            origin_seq: self.seq,
            rreq_id,
            dest: dst,
            dest_seq,
            hop_count: 0,
            ttl,
            ctx: d.ctx,
        }))
    }

    /// Record the sender as a 1-hop neighbor (passive, no sequence number).
    fn learn_neighbor(&mut self, now: SimTime, from: NodeId) {
        self.table
            .update(from, from, 1, None, self.cfg.active_route_lifetime, now);
    }

    /// Drain payloads waiting on `dst` if a usable route now exists.
    fn flush_pending(&mut self, now: SimTime, dst: NodeId, out: &mut Vec<Action<P>>) {
        let Some(route) = self.table.usable_route(dst, now) else {
            return;
        };
        let next_hop = route.next_hop;
        if let Some(d) = self.pending.remove(&dst) {
            for (payload, ctx) in d.queue {
                out.push(Action::Unicast {
                    to: next_hop,
                    msg: Msg::Data(Data {
                        src: self.id,
                        dst,
                        hops: 0,
                        payload,
                        ctx,
                    }),
                });
            }
        }
    }

    fn handle_rreq(&mut self, now: SimTime, from: NodeId, rreq: Rreq) -> Vec<Action<P>> {
        let mut out = Vec::new();
        if rreq.origin == self.id {
            return out; // echo of our own flood
        }
        let key = (rreq.origin, rreq.rreq_id);
        if self.rreq_seen.contains_key(&key) {
            self.stats.rreq_dup_dropped += 1;
            return out;
        }
        self.rreq_seen
            .insert(key, now + self.cfg.rreq_seen_lifetime);

        self.learn_neighbor(now, from);
        // Reverse route to the originator.
        self.table.update(
            rreq.origin,
            from,
            rreq.hop_count + 1,
            Some(rreq.origin_seq),
            self.cfg.active_route_lifetime,
            now,
        );
        self.flush_pending(now, rreq.origin, &mut out);

        if rreq.dest == self.id {
            // We are the destination: answer with our own sequence number.
            if let Some(ds) = rreq.dest_seq {
                if seq_newer(ds, self.seq) {
                    self.seq = ds;
                }
            }
            self.stats.rreps_sent += 1;
            out.push(Action::Unicast {
                to: from,
                msg: Msg::Rrep(Rrep {
                    dest: self.id,
                    dest_seq: self.seq,
                    origin: rreq.origin,
                    hop_count: 0,
                    ctx: rreq.ctx,
                }),
            });
            return out;
        }

        // Intermediate reply when we hold a fresh-enough route.
        if let Some(route) = self.table.usable_route(rreq.dest, now) {
            let fresh_enough = route.valid_seq
                && rreq
                    .dest_seq
                    .is_none_or(|ds| crate::msg::seq_at_least(route.dest_seq, ds));
            if fresh_enough {
                let (dest_seq, hop_count, next_hop) =
                    (route.dest_seq, route.hop_count, route.next_hop);
                // Precursors: the querier reaches dest through us via `from`;
                // the dest-side next hop will see traffic from `from`.
                self.table.add_precursor(rreq.dest, from);
                self.table.add_precursor(rreq.origin, next_hop);
                self.stats.rreps_sent += 1;
                out.push(Action::Unicast {
                    to: from,
                    msg: Msg::Rrep(Rrep {
                        dest: rreq.dest,
                        dest_seq,
                        origin: rreq.origin,
                        hop_count,
                        ctx: rreq.ctx,
                    }),
                });
                return out;
            }
        }

        // Keep the ring expanding.
        if rreq.ttl > 1 {
            self.stats.rreqs_forwarded += 1;
            out.push(Action::Broadcast(Msg::Rreq(Rreq {
                hop_count: rreq.hop_count + 1,
                ttl: rreq.ttl - 1,
                ..rreq
            })));
        }
        out
    }

    fn handle_rrep(&mut self, now: SimTime, from: NodeId, rrep: Rrep) -> Vec<Action<P>> {
        let mut out = Vec::new();
        // A legitimate RREP can cross at most `net_diameter` hops; one
        // claiming more is circulating on a malformed reverse path (the
        // loops an RREQ-amplifying adversary builds out of duplicate
        // requests do exactly this). Drop it before `hop_count + 1`
        // overflows the u8.
        if rrep.hop_count >= self.cfg.net_diameter {
            return out;
        }
        self.learn_neighbor(now, from);
        // Forward route to the discovered destination.
        self.table.update(
            rrep.dest,
            from,
            rrep.hop_count + 1,
            Some(rrep.dest_seq),
            self.cfg.active_route_lifetime,
            now,
        );
        self.flush_pending(now, rrep.dest, &mut out);

        if rrep.origin == self.id {
            return out; // reached the querier; pending data already flushed
        }
        // Forward along the reverse path.
        if let Some(rev) = self.table.usable_route(rrep.origin, now) {
            let rev_hop = rev.next_hop;
            self.table.add_precursor(rrep.dest, rev_hop);
            self.table.add_precursor(rrep.origin, from);
            out.push(Action::Unicast {
                to: rev_hop,
                msg: Msg::Rrep(Rrep {
                    hop_count: rrep.hop_count + 1,
                    ..rrep
                }),
            });
        }
        // No reverse route: the reply dies here (the querier will retry).
        out
    }

    fn handle_rerr(&mut self, _now: SimTime, from: NodeId, rerr: Rerr) -> Vec<Action<P>> {
        let mut out = Vec::new();
        let propagate = self.table.apply_rerr(from, &rerr.unreachable);
        if !propagate.is_empty() {
            self.stats.rerrs_sent += 1;
            out.push(Action::Broadcast(Msg::Rerr(Rerr {
                unreachable: propagate,
                ctx: rerr.ctx,
            })));
        }
        out
    }

    fn handle_data(&mut self, now: SimTime, from: NodeId, data: Data<P>) -> Vec<Action<P>> {
        let mut out = Vec::new();
        self.learn_neighbor(now, from);
        let hops = data.hops.saturating_add(1);
        if data.dst == self.id {
            // Keep the path back to the source warm for replies.
            self.table
                .refresh(data.src, self.cfg.active_route_lifetime, now);
            out.push(Action::Deliver {
                src: data.src,
                hops,
                payload: data.payload,
                ctx: data.ctx,
            });
            return out;
        }
        if hops >= self.cfg.max_data_hops {
            // Routing loop or pathological path: drop like an expired IP TTL.
            self.stats.data_dropped += 1;
            return out;
        }
        if let Some(route) = self.table.usable_route(data.dst, now) {
            let next_hop = route.next_hop;
            self.table
                .refresh(data.dst, self.cfg.active_route_lifetime, now);
            self.table
                .refresh(data.src, self.cfg.active_route_lifetime, now);
            self.table
                .refresh(next_hop, self.cfg.active_route_lifetime, now);
            self.stats.data_forwarded += 1;
            out.push(Action::Unicast {
                to: next_hop,
                msg: Msg::Data(Data { hops, ..data }),
            });
        } else {
            // No route at an intermediate hop: drop + RERR (RFC 3561 §6.11).
            self.stats.data_dropped += 1;
            let seq = self.table.invalidate(data.dst).map(|(_, s)| s).unwrap_or(0);
            self.stats.rerrs_sent += 1;
            out.push(Action::Broadcast(Msg::Rerr(Rerr {
                unreachable: vec![(data.dst, seq)],
                ctx: data.ctx,
            })));
        }
        out
    }

    fn handle_flood(&mut self, now: SimTime, from: NodeId, flood: Flood<P>) -> Vec<Action<P>> {
        let mut out = Vec::new();
        if flood.origin == self.id {
            return out;
        }
        let key = (flood.origin, flood.flood_id);
        if self.flood_seen.contains_key(&key) {
            self.stats.flood_dup_dropped += 1;
            return out; // the paper's per-node broadcast cache
        }
        self.flood_seen
            .insert(key, now + self.cfg.flood_cache_lifetime);

        self.learn_neighbor(now, from);
        let hops = flood.hops + 1;
        if self.cfg.learn_routes_from_flood {
            self.table.update(
                flood.origin,
                from,
                hops,
                None,
                self.cfg.active_route_lifetime,
                now,
            );
            self.flush_pending(now, flood.origin, &mut out);
        }
        out.push(Action::DeliverFlood {
            origin: flood.origin,
            hops,
            payload: flood.payload.clone(),
            ctx: flood.ctx,
        });
        if flood.ttl > 1 {
            self.stats.floods_forwarded += 1;
            out.push(Action::Broadcast(Msg::Flood(Flood {
                ttl: flood.ttl - 1,
                hops,
                ..flood
            })));
        }
        out
    }
}
