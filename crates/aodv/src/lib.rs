//! # manet-aodv — on-demand routing and controlled broadcast
//!
//! The routing substrate the paper runs on: **AODV** (Ad-hoc On-demand
//! Distance Vector, RFC 3561 style) plus the **controlled hop-limited
//! broadcast** the authors patched into ns-2's AODV ("each node has a cache
//! to keep track of the broadcast messages received", §7).
//!
//! The crate is a collection of *pure state machines*: [`Aodv`] consumes
//! `(now, input)` and returns [`Action`]s — transmit this frame, deliver
//! this payload, a destination is unreachable. All I/O, timing and position
//! state live in the world (`manet-sim`), which keeps the protocol
//! deterministic and testable on virtual topologies ([`testkit`]).
//!
//! Implemented: expanding-ring RREQ with per-`(origin, rreq_id)` dedup,
//! RREP from destinations and fresh intermediates, precursor-scoped RERR on
//! link break (link breaks are reported by the world when a link-layer
//! unicast finds its receiver out of range — the 802.11 no-ACK analogue),
//! data buffering during discovery with bounded queues, destination
//! sequence numbers with rollover arithmetic, and soft-state expiry.
//!
//! Optional HELLO beaconing (RFC 3561 §6.9) is available via
//! [`AodvCfg::hello_interval`]; the default relies on link-layer feedback,
//! the mode the paper's ns-2 setup used. Simplifications vs. RFC 3561,
//! recorded in DESIGN.md: no local repair, and RERRs are link-layer
//! broadcast rather than unicast to each precursor (the RFC's multicast
//! option). Neither affects the paper's metrics, which count overlay
//! messages.

pub mod cfg;
pub mod machine;
pub mod msg;
pub mod table;
pub mod testkit;
pub mod wire;

pub use cfg::AodvCfg;
pub use machine::{Action, Aodv, AodvStats};
pub use msg::{Data, Flood, Msg, Payload, Rerr, Rrep, Rreq};
pub use table::{RouteEntry, RouteTable};
pub use wire::{decode_msg, encode_msg, WirePayload};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{TestNet, TestPayload};
    use manet_des::{NodeId, SimDuration, SimTime};

    fn cfg() -> AodvCfg {
        AodvCfg::default()
    }

    #[test]
    fn delivery_over_line_and_hop_counts() {
        let mut net = TestNet::line(5, cfg());
        net.send(0, 4, TestPayload(42));
        // 4 hops exceeds the first expanding-ring TTL (3); allow retries.
        net.step_until(SimTime::from_secs(5), SimDuration::from_millis(100));
        assert_eq!(net.delivered.len(), 1);
        let (at, src, hops, p) = net.delivered[0].clone();
        assert_eq!(at, NodeId(4));
        assert_eq!(src, NodeId(0));
        assert_eq!(hops, 4, "four edges on a 5-node line");
        assert_eq!(p, TestPayload(42));
    }

    #[test]
    fn self_send_delivers_locally_with_zero_hops() {
        let mut net = TestNet::new(2, cfg());
        net.send(1, 1, TestPayload(9));
        assert_eq!(
            net.delivered,
            vec![(NodeId(1), NodeId(1), 0, TestPayload(9))]
        );
        assert_eq!(net.frames_sent, 0, "nothing on the air");
    }

    #[test]
    fn discovery_builds_bidirectional_routes() {
        let mut net = TestNet::line(4, cfg());
        net.send(0, 3, TestPayload(1));
        let now = net.now();
        // Forward route at the source...
        assert_eq!(net.nodes[0].route_hops(NodeId(3), now), Some(3));
        // ...reverse route at the destination (learned from the RREQ).
        assert_eq!(net.nodes[3].route_hops(NodeId(0), now), Some(3));
        // Intermediates know both ends.
        assert_eq!(net.nodes[1].route_hops(NodeId(0), now), Some(1));
        assert_eq!(net.nodes[1].route_hops(NodeId(3), now), Some(2));
    }

    #[test]
    fn second_send_uses_cached_route_without_new_rreq() {
        let mut net = TestNet::line(3, cfg());
        net.send(0, 2, TestPayload(1));
        let rreqs_before = net.nodes[0].stats().rreqs_originated;
        net.send(0, 2, TestPayload(2));
        assert_eq!(net.nodes[0].stats().rreqs_originated, rreqs_before);
        assert_eq!(net.delivered.len(), 2);
    }

    #[test]
    fn overlong_rrep_is_dropped_not_forwarded() {
        use manet_des::TraceCtx;
        // An RREP claiming more hops than the network diameter is
        // circulating on a malformed reverse path (RREQ-amplification
        // builds such loops); it must be swallowed, not incremented —
        // `hop_count + 1` on u8::MAX would abort a debug build.
        let mut node = Aodv::<TestPayload>::new(NodeId(1), cfg());
        let rrep = Rrep {
            dest: NodeId(2),
            dest_seq: 1,
            origin: NodeId(3),
            hop_count: u8::MAX,
            ctx: TraceCtx::NONE,
        };
        let now = SimTime::from_secs(1);
        let out = node.on_frame(now, NodeId(0), Msg::Rrep(rrep));
        assert!(out.is_empty(), "overlong RREP must produce no actions");
        assert!(
            node.route_hops(NodeId(2), now).is_none(),
            "no route may be learned from a malformed RREP"
        );
    }

    #[test]
    fn expanding_ring_eventually_reaches_far_destination() {
        // 10 hops away: beyond ttl_start(3) and threshold(7), needs the
        // net_diameter attempt, i.e. several timer-driven retries.
        let mut net = TestNet::line(11, cfg());
        net.send(0, 10, TestPayload(7));
        assert!(net.delivered.is_empty(), "first ring (ttl 3) cannot reach");
        net.step_until(SimTime::from_secs(10), SimDuration::from_millis(100));
        assert_eq!(net.delivered.len(), 1);
        assert_eq!(net.delivered[0].2, 10);
    }

    #[test]
    fn unreachable_destination_reports_dropped_payloads() {
        let mut net = TestNet::line(3, cfg());
        net.unlink(1, 2);
        net.send(0, 2, TestPayload(1));
        net.send(0, 2, TestPayload(2));
        net.step_until(SimTime::from_secs(30), SimDuration::from_millis(200));
        assert_eq!(net.unreachable.len(), 1);
        let (at, dst, dropped) = net.unreachable[0].clone();
        assert_eq!(at, NodeId(0));
        assert_eq!(dst, NodeId(2));
        assert_eq!(dropped, vec![TestPayload(1), TestPayload(2)]);
    }

    #[test]
    fn link_break_triggers_rerr_and_rediscovery() {
        let mut net = TestNet::new(4, cfg());
        // Diamond: 0-1-3 and 0-2-3.
        net.link(0, 1);
        net.link(1, 3);
        net.link(0, 2);
        net.link(2, 3);
        net.send(0, 3, TestPayload(1));
        assert_eq!(net.delivered.len(), 1);
        let via = net.nodes[0]
            .table()
            .usable_route(NodeId(3), net.now())
            .unwrap()
            .next_hop;
        // Cut the path that was used.
        let used = via.0;
        net.unlink(used, 3);
        net.unlink(0, used);
        // Sending again: the stale route fails at the link layer, the source
        // rediscovers over the surviving branch, and the payload arrives.
        net.send(0, 3, TestPayload(2));
        net.step_until(SimTime::from_secs(5), SimDuration::from_millis(100));
        assert_eq!(net.delivered.len(), 2, "payload re-routed after link break");
    }

    #[test]
    fn flood_reaches_exactly_ttl_hops() {
        let mut net = TestNet::line(6, cfg());
        net.flood(0, 3, TestPayload(5));
        // Nodes 1, 2, 3 hear it; 4 and 5 are beyond the ttl.
        let mut got: Vec<(u32, u8)> = net
            .flood_delivered
            .iter()
            .map(|(at, _, hops, _)| (at.0, *hops))
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![(1, 1), (2, 2), (3, 3)]);
    }

    #[test]
    fn flood_dedup_on_cyclic_topology() {
        let mut net = TestNet::new(4, cfg());
        // Full mesh: without the cache every copy would echo around.
        for a in 0..4 {
            for b in (a + 1)..4 {
                net.link(a, b);
            }
        }
        net.flood(0, 6, TestPayload(1));
        // Each of the 3 other nodes delivers exactly once.
        assert_eq!(net.flood_delivered.len(), 3);
        let unique: std::collections::BTreeSet<u32> = net
            .flood_delivered
            .iter()
            .map(|(at, _, _, _)| at.0)
            .collect();
        assert_eq!(unique.len(), 3);
    }

    #[test]
    fn flood_learns_reverse_routes_when_enabled() {
        let mut net = TestNet::line(4, cfg());
        net.flood(0, 3, TestPayload(1));
        // Node 3 can reply to node 0 without a RREQ.
        let rreqs_before = net.nodes[3].stats().rreqs_originated;
        net.send(3, 0, TestPayload(2));
        assert_eq!(net.nodes[3].stats().rreqs_originated, rreqs_before);
        assert_eq!(net.delivered.len(), 1);
        assert_eq!(net.delivered[0].0, NodeId(0));
    }

    #[test]
    fn flood_route_learning_can_be_disabled() {
        let c = AodvCfg {
            learn_routes_from_flood: false,
            ..cfg()
        };
        let mut net = TestNet::line(4, c);
        net.flood(0, 3, TestPayload(1));
        let rreqs_before = net.nodes[3].stats().rreqs_originated;
        net.send(3, 0, TestPayload(2));
        net.run();
        assert!(net.nodes[3].stats().rreqs_originated > rreqs_before);
    }

    #[test]
    fn intermediate_node_with_fresh_route_replies() {
        let mut net = TestNet::line(5, cfg());
        // Prime node 2 with a sequence-numbered route to 4.
        net.send(2, 4, TestPayload(0));
        // Now 0 asks for 4: node 2 answers from its table.
        net.send(0, 4, TestPayload(1));
        assert_eq!(net.delivered.len(), 2);
        assert_eq!(net.nodes[0].route_hops(NodeId(4), net.now()), Some(4));
    }

    #[test]
    fn buffer_overflow_drops_oldest() {
        let c = AodvCfg {
            max_buffered_per_dest: 2,
            ..cfg()
        };
        let mut net = TestNet::new(2, c);
        // No link: everything queues at the discovery buffer.
        let none = manet_des::TraceCtx::NONE;
        let a0 = net.nodes[0].send(SimTime::ZERO, NodeId(1), TestPayload(1), none);
        assert_eq!(a0.len(), 1, "first send opens a discovery");
        net.nodes[0].send(SimTime::ZERO, NodeId(1), TestPayload(2), none);
        net.nodes[0].send(SimTime::ZERO, NodeId(1), TestPayload(3), none);
        assert_eq!(net.nodes[0].stats().data_dropped, 1);
        // Link up and let the retry deliver what survived.
        net.link(0, 1);
        net.step_until(SimTime::from_secs(5), SimDuration::from_millis(100));
        let got: Vec<u64> = net.delivered.iter().map(|(_, _, _, p)| p.0).collect();
        assert_eq!(got, vec![2, 3], "oldest payload was dropped");
    }

    #[test]
    fn rerr_invalidates_stale_routes_upstream() {
        let mut net = TestNet::line(4, cfg());
        net.send(0, 3, TestPayload(1));
        // Break the last link; node 2 discovers it when forwarding.
        net.unlink(2, 3);
        net.send(0, 3, TestPayload(2));
        net.step(SimDuration::from_millis(100));
        assert!(
            net.nodes[0]
                .table()
                .usable_route(NodeId(3), net.now())
                .is_none(),
            "stale route should be invalidated by the RERR chain"
        );
    }

    #[test]
    fn route_expiry_forces_rediscovery() {
        let mut net = TestNet::line(3, cfg());
        net.send(0, 2, TestPayload(1));
        let rreqs = net.nodes[0].stats().rreqs_originated;
        // Idle far past active_route_lifetime (10 s).
        net.step_until(SimTime::from_secs(60), SimDuration::from_secs(1));
        net.send(0, 2, TestPayload(2));
        net.step_until(SimTime::from_secs(65), SimDuration::from_millis(100));
        assert!(net.nodes[0].stats().rreqs_originated > rreqs);
        assert_eq!(net.delivered.len(), 2);
    }

    #[test]
    fn next_wake_tracks_discovery_deadline() {
        let mut node: Aodv<TestPayload> = Aodv::new(NodeId(0), cfg());
        assert!(
            node.next_wake() >= SimTime::from_secs(1),
            "only purge pending"
        );
        let ctx = manet_des::TraceCtx::root(42, 1);
        node.send(SimTime::ZERO, NodeId(9), TestPayload(1), ctx);
        let wake = node.next_wake();
        assert!(wake <= SimTime::ZERO + cfg().ring_timeout(cfg().ttl_start));
        assert_eq!(
            node.next_wake_ctx(),
            ctx,
            "the armed wake belongs to the waiting discovery"
        );
    }

    #[test]
    fn flood_ttl_one_does_not_propagate() {
        let mut net = TestNet::line(3, cfg());
        net.flood(0, 1, TestPayload(1));
        assert_eq!(net.flood_delivered.len(), 1);
        assert_eq!(net.flood_delivered[0].0, NodeId(1));
    }

    #[test]
    fn concurrent_discoveries_do_not_interfere() {
        let mut net = TestNet::line(5, cfg());
        net.send(0, 4, TestPayload(1));
        net.send(4, 0, TestPayload(2));
        net.step_until(SimTime::from_secs(3), SimDuration::from_millis(100));
        assert_eq!(net.delivered.len(), 2);
        let dsts: std::collections::BTreeSet<u32> =
            net.delivered.iter().map(|(at, _, _, _)| at.0).collect();
        assert_eq!(dsts, [0u32, 4].into_iter().collect());
    }
}

#[cfg(test)]
mod hello_tests {
    use super::*;
    use crate::testkit::{TestNet, TestPayload};
    use manet_des::{NodeId, SimDuration, SimTime};

    fn hello_cfg() -> AodvCfg {
        AodvCfg {
            hello_interval: Some(SimDuration::from_secs(1)),
            allowed_hello_loss: 2,
            ..AodvCfg::default()
        }
    }

    #[test]
    fn hellos_are_beaconed_periodically() {
        let mut net: TestNet<TestPayload> = TestNet::line(2, hello_cfg());
        net.step_until(SimTime::from_secs(5), SimDuration::from_millis(500));
        assert!(
            net.nodes[0].stats().hellos_sent >= 4,
            "expected ~5 beacons, got {}",
            net.nodes[0].stats().hellos_sent
        );
        // Beacons establish 1-hop routes without any data traffic.
        assert_eq!(net.nodes[0].route_hops(NodeId(1), net.now()), Some(1));
        assert_eq!(net.nodes[1].route_hops(NodeId(0), net.now()), Some(1));
    }

    #[test]
    fn silent_neighbor_is_detected_and_rerr_raised() {
        let mut net = TestNet::line(3, hello_cfg());
        // Build a route 0 -> 2 through 1.
        net.send(0, 2, TestPayload(1));
        net.step_until(SimTime::from_secs(3), SimDuration::from_millis(500));
        assert!(net.nodes[0].route_hops(NodeId(2), net.now()).is_some());
        // Cut both of node 1's links: its beacons stop reaching 0.
        net.unlink(0, 1);
        net.unlink(1, 2);
        net.step_until(SimTime::from_secs(10), SimDuration::from_millis(500));
        assert!(
            net.nodes[0].route_hops(NodeId(2), net.now()).is_none(),
            "hello expiry should have broken the route through node 1"
        );
    }

    #[test]
    fn hello_mode_does_not_change_delivery_semantics() {
        let mut net = TestNet::line(4, hello_cfg());
        net.send(0, 3, TestPayload(9));
        net.step_until(SimTime::from_secs(5), SimDuration::from_millis(250));
        assert_eq!(net.delivered.len(), 1);
        assert_eq!(net.delivered[0].2, 3, "hop count unaffected by hellos");
    }

    #[test]
    fn disabled_hellos_send_nothing() {
        let mut net: TestNet<TestPayload> = TestNet::line(2, AodvCfg::default());
        net.step_until(SimTime::from_secs(10), SimDuration::from_secs(1));
        assert_eq!(net.nodes[0].stats().hellos_sent, 0);
    }
}
