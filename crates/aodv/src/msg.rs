//! AODV wire messages, generic over the upper-layer payload `P`.
//!
//! Sizes follow the RFC 3561 packet formats (RREQ 24 B, RREP 20 B, RERR
//! 4 + 8 B per unreachable destination) plus a small link header, so the
//! radio's serialization-delay and energy models see realistic byte counts.
//!
//! Every frame except HELLO additionally carries a [`TraceCtx`]: pure
//! simulation metadata naming the query (or reconfiguration round) that
//! caused the frame. It is deliberately **excluded from
//! [`wire_size`](Msg::wire_size)** — a real implementation would not put
//! it on the air — so the radio's delay and energy models, and therefore
//! every simulation outcome, are identical whether tracing is on or off.

use manet_des::{NodeId, TraceCtx};

/// Upper-layer payloads must report their encoded size for the radio model.
pub trait Payload: Clone + std::fmt::Debug {
    /// Encoded size in bytes.
    fn wire_size(&self) -> u32;
}

/// Bytes of link-layer framing added to every message.
pub const LINK_HEADER: u32 = 12;

/// Route request (flooded with an expanding-ring TTL).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rreq {
    /// Node searching for a route.
    pub origin: NodeId,
    /// Originator's sequence number at request time.
    pub origin_seq: u32,
    /// Per-originator request id; `(origin, rreq_id)` dedups the flood.
    pub rreq_id: u32,
    /// The wanted destination.
    pub dest: NodeId,
    /// Last known destination sequence number, if any.
    pub dest_seq: Option<u32>,
    /// Hops travelled so far (incremented at each rebroadcast).
    pub hop_count: u8,
    /// Remaining time-to-live in hops (expanding-ring search).
    pub ttl: u8,
    /// Causal context of the payload whose delivery needed this route
    /// (simulation metadata, not wire bytes).
    pub ctx: TraceCtx,
}

/// Route reply (unicast back along the reverse path).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rrep {
    /// The discovered destination.
    pub dest: NodeId,
    /// Destination's sequence number.
    pub dest_seq: u32,
    /// The node that requested the route (where this reply is heading).
    pub origin: NodeId,
    /// Hops from the replying point to `dest`, incremented en route.
    pub hop_count: u8,
    /// Causal context inherited from the RREQ being answered
    /// (simulation metadata, not wire bytes).
    pub ctx: TraceCtx,
}

/// Route error: destinations that became unreachable, with the sequence
/// numbers they were invalidated at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rerr {
    /// `(destination, its invalidated sequence number)` pairs.
    pub unreachable: Vec<(NodeId, u32)>,
    /// Causal context of the traffic that exposed the broken route;
    /// [`TraceCtx::NONE`] for errors raised by beacon silence
    /// (simulation metadata, not wire bytes).
    pub ctx: TraceCtx,
}

/// Routed application data.
#[derive(Clone, Debug, PartialEq)]
pub struct Data<P> {
    /// Original source.
    pub src: NodeId,
    /// Final destination.
    pub dst: NodeId,
    /// Ad-hoc hops travelled so far.
    pub hops: u8,
    /// The overlay payload.
    pub payload: P,
    /// Causal context of the sending query or reconfiguration round
    /// (simulation metadata, not wire bytes).
    pub ctx: TraceCtx,
}

/// Controlled hop-limited broadcast — the paper's ns-2 patch. Every node
/// keeps a cache of `(origin, flood_id)` pairs so each flood is forwarded at
/// most once per node.
#[derive(Clone, Debug, PartialEq)]
pub struct Flood<P> {
    /// The flooding node.
    pub origin: NodeId,
    /// Per-origin flood sequence; dedup key together with `origin`.
    pub flood_id: u32,
    /// Remaining hops the flood may still travel.
    pub ttl: u8,
    /// Hops travelled so far (receivers learn their distance to `origin`).
    pub hops: u8,
    /// The overlay payload.
    pub payload: P,
    /// Causal context of the flooding query or reconfiguration round
    /// (simulation metadata, not wire bytes).
    pub ctx: TraceCtx,
}

/// Link-liveness beacon (RFC 3561 §6.9), enabled by
/// [`AodvCfg::hello_interval`](crate::cfg::AodvCfg::hello_interval).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hello {
    /// The beaconing node's current sequence number.
    pub seq: u32,
}

/// Any frame the routing layer puts on the air.
#[derive(Clone, Debug, PartialEq)]
pub enum Msg<P> {
    Rreq(Rreq),
    Rrep(Rrep),
    Rerr(Rerr),
    Data(Data<P>),
    Flood(Flood<P>),
    Hello(Hello),
}

impl<P: Payload> Msg<P> {
    /// Encoded size in bytes, including the link header.
    pub fn wire_size(&self) -> u32 {
        LINK_HEADER
            + match self {
                Msg::Rreq(_) => 24,
                Msg::Rrep(_) => 20,
                Msg::Rerr(e) => 4 + 8 * e.unreachable.len() as u32,
                Msg::Data(d) => 16 + d.payload.wire_size(),
                Msg::Flood(f) => 16 + f.payload.wire_size(),
                Msg::Hello(_) => 8,
            }
    }

    /// The causal context this frame carries ([`TraceCtx::NONE`] for
    /// HELLO beacons, which are background traffic by definition).
    pub fn ctx(&self) -> TraceCtx {
        match self {
            Msg::Rreq(m) => m.ctx,
            Msg::Rrep(m) => m.ctx,
            Msg::Rerr(m) => m.ctx,
            Msg::Data(m) => m.ctx,
            Msg::Flood(m) => m.ctx,
            Msg::Hello(_) => TraceCtx::NONE,
        }
    }

    /// Replace the carried causal context (no-op for HELLO). Used by
    /// recording points to stamp the just-recorded span back onto the
    /// frame before forwarding it.
    pub fn set_ctx(&mut self, ctx: TraceCtx) {
        match self {
            Msg::Rreq(m) => m.ctx = ctx,
            Msg::Rrep(m) => m.ctx = ctx,
            Msg::Rerr(m) => m.ctx = ctx,
            Msg::Data(m) => m.ctx = ctx,
            Msg::Flood(m) => m.ctx = ctx,
            Msg::Hello(_) => {}
        }
    }

    /// Short tag for logging and metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            Msg::Rreq(_) => "rreq",
            Msg::Rrep(_) => "rrep",
            Msg::Rerr(_) => "rerr",
            Msg::Data(_) => "data",
            Msg::Flood(_) => "flood",
            Msg::Hello(_) => "hello",
        }
    }
}

/// Sequence-number comparison with rollover, per RFC 3561 §6.1: numbers are
/// compared as signed 32-bit differences.
#[inline]
pub fn seq_newer(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) > 0
}

/// `a` is at least as fresh as `b` under rollover arithmetic.
#[inline]
pub fn seq_at_least(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) >= 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Blob(u32);
    impl Payload for Blob {
        fn wire_size(&self) -> u32 {
            self.0
        }
    }

    #[test]
    fn wire_sizes() {
        let rreq: Msg<Blob> = Msg::Rreq(Rreq {
            origin: NodeId(1),
            origin_seq: 0,
            rreq_id: 0,
            dest: NodeId(2),
            dest_seq: None,
            hop_count: 0,
            ttl: 3,
            ctx: TraceCtx::NONE,
        });
        assert_eq!(rreq.wire_size(), LINK_HEADER + 24);

        let rerr: Msg<Blob> = Msg::Rerr(Rerr {
            unreachable: vec![(NodeId(1), 5), (NodeId(2), 9)],
            ctx: TraceCtx::NONE,
        });
        assert_eq!(rerr.wire_size(), LINK_HEADER + 4 + 16);

        let data = Msg::Data(Data {
            src: NodeId(1),
            dst: NodeId(2),
            hops: 0,
            payload: Blob(100),
            ctx: TraceCtx::NONE,
        });
        assert_eq!(data.wire_size(), LINK_HEADER + 16 + 100);
        // ctx is metadata: an active context must not change the size.
        let mut traced = data.clone();
        traced.set_ctx(TraceCtx::root(9, 1));
        assert_eq!(traced.wire_size(), data.wire_size());
        assert_eq!(traced.ctx(), TraceCtx::root(9, 1));
    }

    #[test]
    fn kinds() {
        let f: Msg<Blob> = Msg::Flood(Flood {
            origin: NodeId(0),
            flood_id: 1,
            ttl: 2,
            hops: 0,
            payload: Blob(1),
            ctx: TraceCtx::NONE,
        });
        assert_eq!(f.kind(), "flood");
        assert_eq!(f.ctx(), TraceCtx::NONE);
        let hello: Msg<Blob> = Msg::Hello(Hello { seq: 1 });
        let mut hello2 = hello.clone();
        hello2.set_ctx(TraceCtx::root(3, 1));
        assert_eq!(hello2.ctx(), TraceCtx::NONE, "hello never carries a ctx");
    }

    #[test]
    fn seq_comparison_with_rollover() {
        assert!(seq_newer(2, 1));
        assert!(!seq_newer(1, 2));
        assert!(!seq_newer(5, 5));
        assert!(seq_at_least(5, 5));
        // Rollover: u32::MAX + 1 wraps to 0, and 0 is "newer".
        assert!(seq_newer(0, u32::MAX));
        assert!(!seq_newer(u32::MAX, 0));
    }
}
