//! AODV protocol constants.

use manet_des::SimDuration;

/// Tunables of the routing machine. Defaults follow RFC 3561's suggested
/// values where they exist, adapted to pedestrian mobility (longer route
/// lifetimes: topology changes at ~1 m/s, not vehicular speeds).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AodvCfg {
    /// Lifetime granted to a route on creation or refresh.
    pub active_route_lifetime: SimDuration,
    /// First expanding-ring TTL of a route discovery.
    pub ttl_start: u8,
    /// Ring growth per retry.
    pub ttl_increment: u8,
    /// Above this TTL the search jumps straight to `net_diameter`.
    pub ttl_threshold: u8,
    /// Network-wide TTL for the final attempts.
    pub net_diameter: u8,
    /// Full-TTL retries after the ring search before giving up.
    pub rreq_retries: u8,
    /// One-hop traversal estimate; the per-attempt RREQ timeout is
    /// `2 * ttl * hop_traversal_time` (RFC 3561 §6.4).
    pub hop_traversal_time: SimDuration,
    /// How long `(origin, rreq_id)` entries stay in the dedup cache
    /// (PATH_DISCOVERY_TIME).
    pub rreq_seen_lifetime: SimDuration,
    /// How long `(origin, flood_id)` entries stay in the controlled-broadcast
    /// dedup cache (needs only to outlive one flood's propagation).
    pub flood_cache_lifetime: SimDuration,
    /// Learn reverse routes from overheard floods. The paper's overlay
    /// replies to discovery floods with routed unicasts; harvesting the
    /// flood's reverse path (hop count and previous hop are in the header)
    /// avoids a full RREQ for every reply, like ns-2's AODV does for RREQs.
    pub learn_routes_from_flood: bool,
    /// Maximum payloads buffered per destination while discovering.
    pub max_buffered_per_dest: usize,
    /// Hop budget for routed data. Stale or passively learned routes can
    /// form transient loops (they carry no destination sequence number);
    /// packets exceeding this are dropped, like an IP TTL.
    pub max_data_hops: u8,
    /// Beacon HELLOs at this period (RFC 3561 §6.9). `None` (the default)
    /// relies on link-layer feedback alone, like ns-2's AODV with
    /// link-layer detection — the mode the paper's evaluation used.
    pub hello_interval: Option<SimDuration>,
    /// A neighbor is declared lost after this many silent hello periods.
    pub allowed_hello_loss: u32,
}

impl Default for AodvCfg {
    fn default() -> Self {
        AodvCfg {
            active_route_lifetime: SimDuration::from_secs(10),
            ttl_start: 3,
            ttl_increment: 2,
            ttl_threshold: 7,
            net_diameter: 20,
            rreq_retries: 2,
            hop_traversal_time: SimDuration::from_millis(40),
            rreq_seen_lifetime: SimDuration::from_secs(30),
            flood_cache_lifetime: SimDuration::from_secs(30),
            learn_routes_from_flood: true,
            max_buffered_per_dest: 16,
            max_data_hops: 32,
            hello_interval: None,
            allowed_hello_loss: 2,
        }
    }
}

impl AodvCfg {
    /// Timeout for one discovery attempt at ring TTL `ttl`.
    pub fn ring_timeout(&self, ttl: u8) -> SimDuration {
        self.hop_traversal_time * (2 * ttl as u64)
    }

    /// The TTL to use for attempt number `attempt` (0-based): expanding ring
    /// until `ttl_threshold`, then `net_diameter`.
    pub fn ring_ttl(&self, attempt: u8) -> u8 {
        let ttl = self.ttl_start as u32 + self.ttl_increment as u32 * attempt as u32;
        if ttl > self.ttl_threshold as u32 {
            self.net_diameter
        } else {
            ttl as u8
        }
    }

    /// Total discovery attempts before a destination is declared unreachable:
    /// the expanding-ring phase plus `rreq_retries` full-diameter tries.
    pub fn max_attempts(&self) -> u8 {
        // Ring attempts until the TTL would exceed the threshold...
        let mut rings = 0u8;
        while self.ring_ttl(rings) != self.net_diameter {
            rings += 1;
            if rings > 32 {
                break; // degenerate configs (increment = 0) stop growing
            }
        }
        rings + self.rreq_retries + 1
    }

    /// Non-panicking validation: the first internal inconsistency,
    /// rendered; `None` when the configuration is sound.
    pub fn problem(&self) -> Option<String> {
        if self.ttl_start < 1 {
            return Some("ttl_start must be at least 1".into());
        }
        if self.net_diameter < self.ttl_threshold {
            return Some("net_diameter must cover the ring threshold".into());
        }
        if self.active_route_lifetime.is_zero() {
            return Some("active_route_lifetime must be positive".into());
        }
        if self.hop_traversal_time.is_zero() {
            return Some("hop_traversal_time must be positive".into());
        }
        if self.max_buffered_per_dest == 0 {
            return Some("max_buffered_per_dest must be positive".into());
        }
        if self.max_data_hops <= self.net_diameter {
            return Some("data hop budget must exceed the network diameter".into());
        }
        if let Some(h) = self.hello_interval {
            if h.is_zero() {
                return Some("hello interval must be positive".into());
            }
            if self.allowed_hello_loss < 1 {
                return Some("allowed_hello_loss must be at least 1".into());
            }
        }
        None
    }

    /// Panics if the configuration is internally inconsistent.
    pub fn validate(&self) {
        if let Some(p) = self.problem() {
            panic!("{p}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        AodvCfg::default().validate();
    }

    #[test]
    fn ring_ttl_grows_then_jumps_to_diameter() {
        let c = AodvCfg::default();
        assert_eq!(c.ring_ttl(0), 3);
        assert_eq!(c.ring_ttl(1), 5);
        assert_eq!(c.ring_ttl(2), 7);
        assert_eq!(c.ring_ttl(3), 20); // 9 > threshold 7 -> diameter
        assert_eq!(c.ring_ttl(10), 20);
    }

    #[test]
    fn ring_timeout_scales_with_ttl() {
        let c = AodvCfg::default();
        assert_eq!(c.ring_timeout(1), SimDuration::from_millis(80));
        assert_eq!(c.ring_timeout(5), SimDuration::from_millis(400));
    }

    #[test]
    fn max_attempts_counts_rings_and_retries() {
        let c = AodvCfg::default();
        // rings: ttl 3,5,7 (attempts 0..=2), then diameter for 1 + retries(2)
        assert_eq!(c.max_attempts(), 3 + 2 + 1);
    }

    #[test]
    fn degenerate_increment_terminates() {
        let c = AodvCfg {
            ttl_increment: 0,
            ..AodvCfg::default()
        };
        // Must not loop forever.
        assert!(c.max_attempts() >= c.rreq_retries);
    }
}
