//! A virtual network harness for protocol testing.
//!
//! [`TestNet`] wires several [`Aodv`] machines over an explicit adjacency
//! matrix and executes their actions with zero-latency FIFO delivery. No
//! radio, no mobility, no event queue: perfect for asserting protocol
//! behaviour (who replied, which routes exist, what got delivered) on
//! hand-built topologies. Used by this crate's unit tests and reused by the
//! overlay crate's tests; it is *not* part of the simulation stack.

use std::collections::{BTreeSet, VecDeque};

use manet_des::{NodeId, SimDuration, SimTime, TraceCtx};

use crate::cfg::AodvCfg;
use crate::machine::{Action, Aodv};
use crate::msg::{Msg, Payload};

/// A delivered routed payload: `(at, src, hops, payload)`.
pub type Delivered<P> = (NodeId, NodeId, u8, P);

/// A delivered flood payload: `(at, origin, hops, payload)`.
pub type FloodDelivered<P> = (NodeId, NodeId, u8, P);

/// A failed discovery: `(at, dst, dropped payloads)`.
pub type Failed<P> = (NodeId, NodeId, Vec<P>);

/// The harness.
pub struct TestNet<P: Payload> {
    /// The protocol machines, indexed by node id.
    pub nodes: Vec<Aodv<P>>,
    adj: Vec<BTreeSet<u32>>,
    now: SimTime,
    queue: VecDeque<(NodeId, NodeId, Msg<P>)>,
    /// Routed deliveries observed so far.
    pub delivered: Vec<Delivered<P>>,
    /// Flood deliveries observed so far.
    pub flood_delivered: Vec<FloodDelivered<P>>,
    /// Discovery failures observed so far.
    pub unreachable: Vec<Failed<P>>,
    /// Total frames transmitted (both unicast attempts and broadcast copies
    /// count once per transmission, not per receiver).
    pub frames_sent: u64,
}

impl<P: Payload> TestNet<P> {
    /// `n` nodes, no links.
    pub fn new(n: usize, cfg: AodvCfg) -> Self {
        TestNet {
            nodes: (0..n).map(|i| Aodv::new(NodeId(i as u32), cfg)).collect(),
            adj: vec![BTreeSet::new(); n],
            now: SimTime::ZERO,
            queue: VecDeque::new(),
            delivered: Vec::new(),
            flood_delivered: Vec::new(),
            unreachable: Vec::new(),
            frames_sent: 0,
        }
    }

    /// A line topology `0 - 1 - 2 - ... - (n-1)`.
    pub fn line(n: usize, cfg: AodvCfg) -> Self {
        let mut net = Self::new(n, cfg);
        for i in 0..n.saturating_sub(1) {
            net.link(i as u32, i as u32 + 1);
        }
        net
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Create the symmetric link `a — b`.
    pub fn link(&mut self, a: u32, b: u32) {
        assert_ne!(a, b);
        self.adj[a as usize].insert(b);
        self.adj[b as usize].insert(a);
    }

    /// Remove the symmetric link `a — b`.
    pub fn unlink(&mut self, a: u32, b: u32) {
        self.adj[a as usize].remove(&b);
        self.adj[b as usize].remove(&a);
    }

    /// Upper-layer send from `src` to `dst`; then run the network to quiescence.
    pub fn send(&mut self, src: u32, dst: u32, payload: P) {
        let actions = self.nodes[src as usize].send(self.now, NodeId(dst), payload, TraceCtx::NONE);
        self.execute(NodeId(src), actions);
        self.run();
    }

    /// Originate a controlled broadcast from `src`; run to quiescence.
    pub fn flood(&mut self, src: u32, ttl: u8, payload: P) {
        let actions = self.nodes[src as usize].flood(self.now, ttl, payload, TraceCtx::NONE);
        self.execute(NodeId(src), actions);
        self.run();
    }

    /// Advance virtual time by `dt`, ticking every node, then run to
    /// quiescence. Call repeatedly to trigger ring retries and expiry.
    pub fn step(&mut self, dt: SimDuration) {
        self.now += dt;
        for i in 0..self.nodes.len() {
            let actions = self.nodes[i].tick(self.now);
            self.execute(NodeId(i as u32), actions);
        }
        self.run();
    }

    /// Advance time in `dt` steps until `t_final`.
    pub fn step_until(&mut self, t_final: SimTime, dt: SimDuration) {
        while self.now < t_final {
            self.step(dt);
        }
    }

    /// Drain the frame queue, executing resulting actions, until quiescent.
    pub fn run(&mut self) {
        let mut safety = 1_000_000u64;
        while let Some((from, to, msg)) = self.queue.pop_front() {
            let actions = self.nodes[to.index()].on_frame(self.now, from, msg);
            self.execute(to, actions);
            safety -= 1;
            assert!(safety > 0, "TestNet failed to quiesce (protocol loop?)");
        }
    }

    fn execute(&mut self, at: NodeId, actions: Vec<Action<P>>) {
        for action in actions {
            match action {
                Action::Broadcast(msg) => {
                    self.frames_sent += 1;
                    for &nb in &self.adj[at.index()] {
                        self.queue.push_back((at, NodeId(nb), msg.clone()));
                    }
                }
                Action::Unicast { to, msg } => {
                    self.frames_sent += 1;
                    if self.adj[at.index()].contains(&to.0) {
                        self.queue.push_back((at, to, msg));
                    } else {
                        let fail = self.nodes[at.index()].on_unicast_failed(self.now, to, msg);
                        self.execute(at, fail);
                    }
                }
                Action::Deliver {
                    src, hops, payload, ..
                } => {
                    self.delivered.push((at, src, hops, payload));
                }
                Action::DeliverFlood {
                    origin,
                    hops,
                    payload,
                    ..
                } => {
                    self.flood_delivered.push((at, origin, hops, payload));
                }
                Action::Unreachable { dst, dropped, .. } => {
                    self.unreachable.push((at, dst, dropped));
                }
            }
        }
    }
}

/// A trivially sized test payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TestPayload(pub u64);

impl Payload for TestPayload {
    fn wire_size(&self) -> u32 {
        8
    }
}
