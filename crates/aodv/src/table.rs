//! The AODV routing table.
//!
//! One entry per known destination, carrying the RFC 3561 state: next hop,
//! hop count, destination sequence number (and whether it is valid), expiry,
//! validity flag, and the precursor list used to scope RERR propagation.

use std::collections::{BTreeMap, BTreeSet};

use manet_des::{NodeId, SimDuration, SimTime};

use crate::msg::{seq_at_least, seq_newer};

/// Routing state for one destination.
#[derive(Clone, Debug)]
pub struct RouteEntry {
    /// Neighbor that leads toward the destination.
    pub next_hop: NodeId,
    /// Hops to the destination.
    pub hop_count: u8,
    /// Destination sequence number last heard.
    pub dest_seq: u32,
    /// Whether `dest_seq` was ever learned from the destination's own
    /// advertisement (false for routes learned passively, e.g. from floods).
    pub valid_seq: bool,
    /// When this route stops being usable.
    pub expires: SimTime,
    /// Usable right now. Invalid entries are kept (soft state) so their
    /// sequence numbers still gate stale adverts.
    pub valid: bool,
    /// Upstream nodes that route through us toward this destination; they
    /// are told (RERR) when the route breaks.
    pub precursors: BTreeSet<NodeId>,
}

impl RouteEntry {
    /// Usable at time `now`?
    pub fn usable(&self, now: SimTime) -> bool {
        self.valid && self.expires > now
    }
}

/// The table: destination → [`RouteEntry`].
///
/// A `BTreeMap` keeps iteration deterministic (RERR contents, diagnostics)
/// so simulations replay bit-identically.
#[derive(Clone, Debug, Default)]
pub struct RouteTable {
    entries: BTreeMap<NodeId, RouteEntry>,
}

impl RouteTable {
    /// Empty table.
    pub fn new() -> Self {
        RouteTable::default()
    }

    /// Number of entries (valid or soft-state).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry for `dst`, usable or not.
    pub fn entry(&self, dst: NodeId) -> Option<&RouteEntry> {
        self.entries.get(&dst)
    }

    /// The usable route to `dst` at `now`, if any.
    pub fn usable_route(&self, dst: NodeId, now: SimTime) -> Option<&RouteEntry> {
        self.entries.get(&dst).filter(|e| e.usable(now))
    }

    /// Incorporate a routing advertisement for `dst` (from a RREQ's reverse
    /// path, a RREP's forward path, or a passively learned path).
    ///
    /// The entry is replaced iff the advert is *fresher* per RFC 3561 §6.2:
    /// no current entry, newer sequence number, same sequence with fewer
    /// hops, or the current entry is invalid/expired. Passive adverts
    /// (`seq = None`) never displace a valid sequence-numbered route but can
    /// fill gaps. Returns whether the entry changed.
    #[allow(clippy::too_many_arguments)]
    pub fn update(
        &mut self,
        dst: NodeId,
        next_hop: NodeId,
        hop_count: u8,
        seq: Option<u32>,
        lifetime: SimDuration,
        now: SimTime,
    ) -> bool {
        let expires = now + lifetime;
        match self.entries.get_mut(&dst) {
            None => {
                self.entries.insert(
                    dst,
                    RouteEntry {
                        next_hop,
                        hop_count,
                        dest_seq: seq.unwrap_or(0),
                        valid_seq: seq.is_some(),
                        expires,
                        valid: true,
                        precursors: BTreeSet::new(),
                    },
                );
                true
            }
            Some(e) => {
                let fresher = match seq {
                    Some(s) if e.valid_seq => {
                        seq_newer(s, e.dest_seq)
                            || (s == e.dest_seq && (hop_count < e.hop_count || !e.usable(now)))
                    }
                    Some(_) => true, // first real sequence number wins
                    None => !e.usable(now),
                };
                if fresher {
                    e.next_hop = next_hop;
                    e.hop_count = hop_count;
                    if let Some(s) = seq {
                        e.dest_seq = s;
                        e.valid_seq = true;
                    }
                    e.expires = expires;
                    e.valid = true;
                    true
                } else {
                    // A non-displacing advert for the same next hop still
                    // proves the path is alive: extend the lifetime.
                    if e.valid && e.next_hop == next_hop && e.expires < expires {
                        e.expires = expires;
                    }
                    false
                }
            }
        }
    }

    /// Extend the lifetime of an active route (data traffic refresh).
    pub fn refresh(&mut self, dst: NodeId, lifetime: SimDuration, now: SimTime) {
        if let Some(e) = self.entries.get_mut(&dst) {
            if e.valid {
                let expires = now + lifetime;
                if e.expires < expires {
                    e.expires = expires;
                }
            }
        }
    }

    /// Record that `precursor` routes through us toward `dst`.
    pub fn add_precursor(&mut self, dst: NodeId, precursor: NodeId) {
        if let Some(e) = self.entries.get_mut(&dst) {
            e.precursors.insert(precursor);
        }
    }

    /// Invalidate the route to `dst`, bumping its sequence number so stale
    /// adverts cannot resurrect it. Returns the invalidated `(dst, seq)` if
    /// a valid entry existed.
    pub fn invalidate(&mut self, dst: NodeId) -> Option<(NodeId, u32)> {
        let e = self.entries.get_mut(&dst)?;
        if !e.valid {
            return None;
        }
        e.valid = false;
        e.dest_seq = e.dest_seq.wrapping_add(1);
        Some((dst, e.dest_seq))
    }

    /// Invalidate every valid route whose next hop is `via`, returning the
    /// affected `(dst, bumped seq)` pairs — the contents of the RERR.
    pub fn break_link(&mut self, via: NodeId) -> Vec<(NodeId, u32)> {
        let mut broken: Vec<(NodeId, u32)> = Vec::new();
        for (dst, e) in self.entries.iter_mut() {
            if e.valid && e.next_hop == via {
                e.valid = false;
                e.dest_seq = e.dest_seq.wrapping_add(1);
                broken.push((*dst, e.dest_seq));
            }
        }
        broken.sort_unstable_by_key(|(d, _)| *d);
        broken
    }

    /// Apply a received RERR from neighbor `from`: invalidate routes to the
    /// listed destinations that go through `from`, adopting the advertised
    /// sequence numbers. Returns the destinations we in turn invalidated
    /// (for forwarding to our own precursors).
    pub fn apply_rerr(
        &mut self,
        from: NodeId,
        unreachable: &[(NodeId, u32)],
    ) -> Vec<(NodeId, u32)> {
        let mut propagate = Vec::new();
        for &(dst, seq) in unreachable {
            if let Some(e) = self.entries.get_mut(&dst) {
                if e.valid && e.next_hop == from {
                    e.valid = false;
                    if !e.valid_seq || seq_at_least(seq, e.dest_seq) {
                        e.dest_seq = seq;
                        e.valid_seq = true;
                    }
                    propagate.push((dst, e.dest_seq));
                }
            }
        }
        propagate
    }

    /// Drop entries whose soft state outlived its usefulness (expired more
    /// than `grace` ago). Keeps the map bounded on long runs.
    pub fn purge(&mut self, now: SimTime, grace: SimDuration) {
        self.entries
            .retain(|_, e| e.valid || e.expires + grace > now);
    }

    /// Iterate all entries (tests and diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = (&NodeId, &RouteEntry)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIFE: SimDuration = SimDuration::from_secs(10);

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn new_route_is_usable() {
        let mut rt = RouteTable::new();
        assert!(rt.update(NodeId(5), NodeId(2), 3, Some(7), LIFE, t(0)));
        let e = rt.usable_route(NodeId(5), t(1)).unwrap();
        assert_eq!(e.next_hop, NodeId(2));
        assert_eq!(e.hop_count, 3);
        assert_eq!(e.dest_seq, 7);
    }

    #[test]
    fn expiry_disables_route() {
        let mut rt = RouteTable::new();
        rt.update(NodeId(5), NodeId(2), 3, Some(7), LIFE, t(0));
        assert!(rt.usable_route(NodeId(5), t(9)).is_some());
        assert!(rt.usable_route(NodeId(5), t(10)).is_none());
        assert!(rt.entry(NodeId(5)).is_some(), "soft state is retained");
    }

    #[test]
    fn newer_seq_displaces_even_with_more_hops() {
        let mut rt = RouteTable::new();
        rt.update(NodeId(5), NodeId(2), 2, Some(7), LIFE, t(0));
        assert!(rt.update(NodeId(5), NodeId(3), 9, Some(8), LIFE, t(0)));
        assert_eq!(rt.entry(NodeId(5)).unwrap().next_hop, NodeId(3));
    }

    #[test]
    fn same_seq_needs_fewer_hops() {
        let mut rt = RouteTable::new();
        rt.update(NodeId(5), NodeId(2), 4, Some(7), LIFE, t(0));
        assert!(!rt.update(NodeId(5), NodeId(3), 6, Some(7), LIFE, t(0)));
        assert_eq!(rt.entry(NodeId(5)).unwrap().next_hop, NodeId(2));
        assert!(rt.update(NodeId(5), NodeId(4), 2, Some(7), LIFE, t(0)));
        assert_eq!(rt.entry(NodeId(5)).unwrap().next_hop, NodeId(4));
    }

    #[test]
    fn stale_seq_rejected() {
        let mut rt = RouteTable::new();
        rt.update(NodeId(5), NodeId(2), 4, Some(7), LIFE, t(0));
        assert!(!rt.update(NodeId(5), NodeId(3), 1, Some(6), LIFE, t(0)));
        assert_eq!(rt.entry(NodeId(5)).unwrap().next_hop, NodeId(2));
    }

    #[test]
    fn passive_advert_fills_gap_but_never_displaces() {
        let mut rt = RouteTable::new();
        assert!(rt.update(NodeId(5), NodeId(2), 4, None, LIFE, t(0)));
        assert!(!rt.entry(NodeId(5)).unwrap().valid_seq);
        // Passive cannot displace a usable route...
        assert!(!rt.update(NodeId(5), NodeId(3), 1, None, LIFE, t(1)));
        // ...but a sequence-numbered advert upgrades it.
        assert!(rt.update(NodeId(5), NodeId(4), 2, Some(1), LIFE, t(1)));
        assert!(rt.entry(NodeId(5)).unwrap().valid_seq);
        // And passive refills once the route expires.
        assert!(rt.update(NodeId(5), NodeId(6), 3, None, LIFE, t(30)));
        assert_eq!(rt.entry(NodeId(5)).unwrap().next_hop, NodeId(6));
    }

    #[test]
    fn same_next_hop_refreshes_lifetime_without_displacing() {
        let mut rt = RouteTable::new();
        rt.update(NodeId(5), NodeId(2), 2, Some(7), LIFE, t(0));
        // Same seq, same hops: not "fresher", but proves liveness.
        assert!(!rt.update(NodeId(5), NodeId(2), 2, Some(7), LIFE, t(5)));
        assert!(rt.usable_route(NodeId(5), t(12)).is_some());
    }

    #[test]
    fn refresh_extends_lifetime() {
        let mut rt = RouteTable::new();
        rt.update(NodeId(5), NodeId(2), 2, Some(7), LIFE, t(0));
        rt.refresh(NodeId(5), LIFE, t(8));
        assert!(rt.usable_route(NodeId(5), t(15)).is_some());
    }

    #[test]
    fn invalidate_bumps_seq() {
        let mut rt = RouteTable::new();
        rt.update(NodeId(5), NodeId(2), 2, Some(7), LIFE, t(0));
        assert_eq!(rt.invalidate(NodeId(5)), Some((NodeId(5), 8)));
        assert!(rt.usable_route(NodeId(5), t(1)).is_none());
        assert_eq!(rt.invalidate(NodeId(5)), None, "already invalid");
        // A newer advert can resurrect it.
        assert!(rt.update(NodeId(5), NodeId(3), 2, Some(9), LIFE, t(1)));
        assert!(rt.usable_route(NodeId(5), t(2)).is_some());
    }

    #[test]
    fn break_link_invalidates_all_routes_via_hop() {
        let mut rt = RouteTable::new();
        rt.update(NodeId(5), NodeId(2), 2, Some(7), LIFE, t(0));
        rt.update(NodeId(6), NodeId(2), 3, Some(4), LIFE, t(0));
        rt.update(NodeId(7), NodeId(3), 1, Some(1), LIFE, t(0));
        let broken = rt.break_link(NodeId(2));
        assert_eq!(broken, vec![(NodeId(5), 8), (NodeId(6), 5)]);
        assert!(rt.usable_route(NodeId(7), t(1)).is_some());
    }

    #[test]
    fn apply_rerr_only_affects_routes_via_sender() {
        let mut rt = RouteTable::new();
        rt.update(NodeId(5), NodeId(2), 2, Some(7), LIFE, t(0));
        rt.update(NodeId(6), NodeId(3), 3, Some(4), LIFE, t(0));
        let prop = rt.apply_rerr(NodeId(2), &[(NodeId(5), 9), (NodeId(6), 9)]);
        assert_eq!(prop, vec![(NodeId(5), 9)]);
        assert!(rt.usable_route(NodeId(5), t(1)).is_none());
        assert!(rt.usable_route(NodeId(6), t(1)).is_some());
    }

    #[test]
    fn precursors_tracked() {
        let mut rt = RouteTable::new();
        rt.update(NodeId(5), NodeId(2), 2, Some(7), LIFE, t(0));
        rt.add_precursor(NodeId(5), NodeId(9));
        rt.add_precursor(NodeId(5), NodeId(9));
        rt.add_precursor(NodeId(5), NodeId(8));
        let e = rt.entry(NodeId(5)).unwrap();
        assert_eq!(e.precursors.len(), 2);
    }

    #[test]
    fn purge_drops_long_expired_soft_state() {
        let mut rt = RouteTable::new();
        rt.update(NodeId(5), NodeId(2), 2, Some(7), LIFE, t(0));
        rt.invalidate(NodeId(5));
        rt.purge(t(100), SimDuration::from_secs(30));
        assert!(rt.entry(NodeId(5)).is_none());
        assert!(rt.is_empty());
    }
}

#[cfg(test)]
mod properties {
    use super::*;
    use manet_testkit::{option_of, prop_assert, prop_assert_eq, properties, vec_of};

    const LIFE: SimDuration = SimDuration::from_secs(10);

    properties! {
        config = manet_testkit::Config::cases(64);

        /// Whatever update sequence is applied, a usable route always has a
        /// strictly future expiry, and invalidation is monotone in sequence
        /// numbers (an entry's seq never goes backwards while valid_seq).
        fn updates_never_regress_sequence_numbers(
            ops in vec_of(
                (1u32..6, 1u32..6, 1u8..10, option_of(0u32..50), 0u64..100),
                1..100,
            )
        ) {
            let mut rt = RouteTable::new();
            let mut last_seq: std::collections::BTreeMap<NodeId, u32> = Default::default();
            for (dst, via, hops, seq, at) in ops {
                let now = SimTime::from_secs(at);
                let dst = NodeId(dst);
                rt.update(dst, NodeId(via), hops, seq, LIFE, now);
                if let Some(e) = rt.entry(dst) {
                    if e.valid_seq {
                        if let Some(&prev) = last_seq.get(&dst) {
                            prop_assert!(
                                crate::msg::seq_at_least(e.dest_seq, prev),
                                "seq regressed for {dst}: {} -> {}",
                                prev,
                                e.dest_seq
                            );
                        }
                        last_seq.insert(dst, e.dest_seq);
                    }
                    if let Some(u) = rt.usable_route(dst, now) {
                        prop_assert!(u.expires > now);
                    }
                }
            }
        }

        /// break_link leaves no valid route through the broken hop and
        /// reports each broken destination exactly once, sorted.
        fn break_link_is_complete_and_sorted(
            routes in vec_of((1u32..8, 1u32..4, 1u8..5, 0u32..20), 1..30),
            via in 1u32..4,
        ) {
            let mut rt = RouteTable::new();
            let now = SimTime::ZERO;
            for (dst, hop, hops, seq) in routes {
                rt.update(NodeId(dst), NodeId(hop), hops, Some(seq), LIFE, now);
            }
            let broken = rt.break_link(NodeId(via));
            let mut sorted = broken.clone();
            sorted.sort_unstable_by_key(|(d, _)| *d);
            sorted.dedup_by_key(|(d, _)| *d);
            prop_assert_eq!(&broken, &sorted, "sorted and unique");
            for (dst, e) in rt.iter() {
                prop_assert!(
                    !(e.valid && e.next_hop == NodeId(via)),
                    "route to {dst} still valid via the broken hop"
                );
            }
        }
    }
}
