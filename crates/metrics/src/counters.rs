//! Per-node received-message counters (Figs 7–12).

use manet_des::NodeId;

/// The message families the paper's figures count.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MsgKind {
    /// Connect messages: probes, captures and every handshake leg (Figs 7–8).
    Connect,
    /// Keep-alive pings (Figs 9–10).
    Ping,
    /// Keep-alive pongs (tracked separately; the paper counts pings).
    Pong,
    /// Search queries (Figs 11–12).
    Query,
    /// Search answers.
    QueryHit,
    /// File download requests (transfer-phase extension).
    Fetch,
    /// Bulk file payloads (transfer-phase extension).
    Transfer,
}

impl MsgKind {
    /// All kinds, for iteration.
    pub const ALL: [MsgKind; 7] = [
        MsgKind::Connect,
        MsgKind::Ping,
        MsgKind::Pong,
        MsgKind::Query,
        MsgKind::QueryHit,
        MsgKind::Fetch,
        MsgKind::Transfer,
    ];

    /// Dense index.
    pub fn index(self) -> usize {
        match self {
            MsgKind::Connect => 0,
            MsgKind::Ping => 1,
            MsgKind::Pong => 2,
            MsgKind::Query => 3,
            MsgKind::QueryHit => 4,
            MsgKind::Fetch => 5,
            MsgKind::Transfer => 6,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            MsgKind::Connect => "connect",
            MsgKind::Ping => "ping",
            MsgKind::Pong => "pong",
            MsgKind::Query => "query",
            MsgKind::QueryHit => "queryhit",
            MsgKind::Fetch => "fetch",
            MsgKind::Transfer => "transfer",
        }
    }
}

/// A `node x message-kind` matrix of received counts.
#[derive(Clone, Debug)]
pub struct NodeCounters {
    counts: Vec<[u64; 7]>,
}

impl NodeCounters {
    /// Counters for `n` nodes, all zero.
    pub fn new(n: usize) -> Self {
        NodeCounters {
            counts: vec![[0; 7]; n],
        }
    }

    /// Number of nodes tracked.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True if no nodes are tracked.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Record one received message of `kind` at `node`. Counts saturate at
    /// `u64::MAX` instead of overflowing, so pathological soak runs degrade
    /// to a pegged counter rather than a panic or a wrapped total.
    pub fn record(&mut self, node: NodeId, kind: MsgKind) {
        self.record_many(node, kind, 1);
    }

    /// Record `n` received messages of `kind` at `node`, saturating.
    pub fn record_many(&mut self, node: NodeId, kind: MsgKind, n: u64) {
        let slot = &mut self.counts[node.index()][kind.index()];
        *slot = slot.saturating_add(n);
    }

    /// Fold another counter matrix into this one element-wise, saturating.
    /// Both must track the same number of nodes.
    pub fn merge(&mut self, other: &NodeCounters) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "cannot merge counters over different node counts"
        );
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            for (m, t) in mine.iter_mut().zip(theirs) {
                *m = m.saturating_add(*t);
            }
        }
    }

    /// The count for one node and kind.
    pub fn get(&self, node: NodeId, kind: MsgKind) -> u64 {
        self.counts[node.index()][kind.index()]
    }

    /// Raw per-node column for `kind`, indexed by node id.
    pub fn column(&self, kind: MsgKind) -> Vec<u64> {
        self.counts.iter().map(|row| row[kind.index()]).collect()
    }

    /// Per-node column for `kind` restricted to `members`, *decreasingly
    /// ordered* — exactly the x-axis of Figs 7–12 ("nodes decreasingly
    /// ordered by # of received ...").
    pub fn sorted_desc(&self, kind: MsgKind, members: &[NodeId]) -> Vec<u64> {
        let mut v: Vec<u64> = members
            .iter()
            .map(|n| self.counts[n.index()][kind.index()])
            .collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    }

    /// Total of `kind` across all nodes.
    pub fn total(&self, kind: MsgKind) -> u64 {
        self.counts.iter().map(|row| row[kind.index()]).sum()
    }

    /// Mean per member of `kind` over the given member set.
    pub fn mean_over(&self, kind: MsgKind, members: &[NodeId]) -> f64 {
        if members.is_empty() {
            return 0.0;
        }
        let sum: u64 = members
            .iter()
            .map(|n| self.counts[n.index()][kind.index()])
            .sum();
        sum as f64 / members.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_read_back() {
        let mut c = NodeCounters::new(3);
        c.record(NodeId(0), MsgKind::Ping);
        c.record(NodeId(0), MsgKind::Ping);
        c.record(NodeId(2), MsgKind::Query);
        assert_eq!(c.get(NodeId(0), MsgKind::Ping), 2);
        assert_eq!(c.get(NodeId(1), MsgKind::Ping), 0);
        assert_eq!(c.get(NodeId(2), MsgKind::Query), 1);
        assert_eq!(c.total(MsgKind::Ping), 2);
    }

    #[test]
    fn sorted_desc_matches_figure_convention() {
        let mut c = NodeCounters::new(4);
        for _ in 0..5 {
            c.record(NodeId(1), MsgKind::Connect);
        }
        for _ in 0..9 {
            c.record(NodeId(3), MsgKind::Connect);
        }
        c.record(NodeId(0), MsgKind::Connect);
        let members = [NodeId(0), NodeId(1), NodeId(3)];
        assert_eq!(c.sorted_desc(MsgKind::Connect, &members), vec![9, 5, 1]);
    }

    #[test]
    fn sorted_desc_ignores_non_members() {
        let mut c = NodeCounters::new(4);
        for _ in 0..100 {
            c.record(NodeId(2), MsgKind::Ping); // a non-member relay
        }
        c.record(NodeId(0), MsgKind::Ping);
        let members = [NodeId(0), NodeId(1)];
        assert_eq!(c.sorted_desc(MsgKind::Ping, &members), vec![1, 0]);
    }

    #[test]
    fn mean_over_members() {
        let mut c = NodeCounters::new(3);
        for _ in 0..6 {
            c.record(NodeId(0), MsgKind::Query);
        }
        let members = [NodeId(0), NodeId(1), NodeId(2)];
        assert_eq!(c.mean_over(MsgKind::Query, &members), 2.0);
        assert_eq!(c.mean_over(MsgKind::Query, &[]), 0.0);
    }

    #[test]
    fn kinds_have_distinct_indices() {
        let mut seen = std::collections::BTreeSet::new();
        for k in MsgKind::ALL {
            assert!(seen.insert(k.index()));
            assert!(!k.name().is_empty());
        }
    }

    #[test]
    fn empty_counter_matrix_is_well_behaved() {
        let c = NodeCounters::new(0);
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert_eq!(c.total(MsgKind::Ping), 0);
        assert!(c.column(MsgKind::Ping).is_empty());
        assert!(c.sorted_desc(MsgKind::Ping, &[]).is_empty());
        assert_eq!(c.mean_over(MsgKind::Ping, &[]), 0.0);
    }

    #[test]
    fn counts_saturate_instead_of_overflowing() {
        let mut c = NodeCounters::new(1);
        c.record_many(NodeId(0), MsgKind::Connect, u64::MAX - 1);
        c.record(NodeId(0), MsgKind::Connect);
        assert_eq!(c.get(NodeId(0), MsgKind::Connect), u64::MAX);
        c.record(NodeId(0), MsgKind::Connect); // would overflow if unchecked
        assert_eq!(c.get(NodeId(0), MsgKind::Connect), u64::MAX);
    }

    #[test]
    fn merge_adds_elementwise_and_saturates() {
        let mut a = NodeCounters::new(2);
        let mut b = NodeCounters::new(2);
        a.record_many(NodeId(0), MsgKind::Query, 3);
        b.record_many(NodeId(0), MsgKind::Query, 4);
        b.record_many(NodeId(1), MsgKind::Ping, u64::MAX);
        a.record(NodeId(1), MsgKind::Ping);
        a.merge(&b);
        assert_eq!(a.get(NodeId(0), MsgKind::Query), 7);
        assert_eq!(a.get(NodeId(1), MsgKind::Ping), u64::MAX);
        assert_eq!(a.get(NodeId(1), MsgKind::Query), 0);
    }

    #[test]
    #[should_panic(expected = "different node counts")]
    fn merge_rejects_mismatched_sizes() {
        let mut a = NodeCounters::new(2);
        a.merge(&NodeCounters::new(3));
    }
}
