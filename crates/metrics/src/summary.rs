//! Summary statistics over replications.
//!
//! The paper repeats every simulation 33 times; these helpers turn the 33
//! per-run values into mean, standard deviation and a 95 % confidence
//! interval (Student t, with a small-sample table).

/// Mean / spread / confidence summary of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator).
    pub std_dev: f64,
    /// Half-width of the 95 % confidence interval.
    pub ci95: f64,
}

/// Two-sided 95 % Student-t critical values for df = 1..=30; beyond that
/// the normal approximation (1.96) is used.
const T_TABLE: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

fn t_crit(df: usize) -> f64 {
    if df == 0 {
        f64::NAN
    } else if df <= 30 {
        T_TABLE[df - 1]
    } else {
        1.96
    }
}

impl Summary {
    /// Summarize a sample. Panics on an empty slice.
    pub fn from_slice(values: &[f64]) -> Summary {
        assert!(!values.is_empty(), "cannot summarize an empty sample");
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        if n == 1 {
            return Summary {
                n,
                mean,
                std_dev: 0.0,
                ci95: 0.0,
            };
        }
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        let std_dev = var.sqrt();
        let ci95 = t_crit(n - 1) * std_dev / (n as f64).sqrt();
        Summary {
            n,
            mean,
            std_dev,
            ci95,
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3} ± {:.3}", self.mean, self.ci95)
    }
}

/// Average several equally-shaped series element-wise — the aggregation of
/// the sorted per-node curves across replications. Shorter series are
/// zero-padded to the longest (a run where fewer members joined still
/// contributes zeros at the tail, matching the figures' fixed x-axis).
pub fn average_series(runs: &[Vec<u64>]) -> Vec<f64> {
    let width = runs.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut avg = vec![0.0; width];
    if runs.is_empty() {
        return avg;
    }
    for run in runs {
        for (i, &v) in run.iter().enumerate() {
            avg[i] += v as f64;
        }
    }
    for v in &mut avg {
        *v /= runs.len() as f64;
    }
    avg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_sample() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.138).abs() < 0.001);
        // df = 7 -> t = 2.365
        assert!((s.ci95 - 2.365 * s.std_dev / 8f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn single_value_has_zero_spread() {
        let s = Summary::from_slice(&[3.5]);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    fn constant_sample_has_zero_ci() {
        let s = Summary::from_slice(&[2.0; 33]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    fn paper_sample_size_uses_t_table() {
        // 33 runs -> df 32 -> normal approximation.
        let vals: Vec<f64> = (0..33).map(|i| i as f64).collect();
        let s = Summary::from_slice(&vals);
        assert_eq!(s.n, 33);
        let expect = 1.96 * s.std_dev / 33f64.sqrt();
        assert!((s.ci95 - expect).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        Summary::from_slice(&[]);
    }

    #[test]
    fn average_series_element_wise() {
        let runs = vec![vec![4, 2, 0], vec![2, 2, 2]];
        assert_eq!(average_series(&runs), vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn average_series_pads_short_runs() {
        let runs = vec![vec![4, 4], vec![2]];
        assert_eq!(average_series(&runs), vec![3.0, 2.0]);
    }

    #[test]
    fn average_series_empty() {
        assert!(average_series(&[]).is_empty());
    }

    #[test]
    fn display_formats() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(format!("{s}"), "2.000 ± 2.484");
    }
}
