//! Per-file distance and answer-count accumulators (Figs 5–6).
//!
//! For every completed query the requirer records the number of answers and
//! the *minimum* distance (in ad-hoc hops) to a peer holding the file. The
//! figures plot, per file rank, the averages of both.

/// Accumulated results for one file rank.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FileAccum {
    /// Completed queries for this file.
    pub requests: u64,
    /// Total answers across those queries.
    pub answers: u64,
    /// Sum over answered queries of the minimum ad-hoc distance.
    pub min_dist_sum: f64,
    /// Number of answered queries (those with >= 1 answer).
    pub answered: u64,
    /// Sum over answered queries of the minimum p2p distance.
    pub min_p2p_sum: f64,
    /// Sum of the *oracle* minimum ad-hoc distance: BFS over the radio
    /// connectivity graph from the requirer to the nearest holder at query
    /// time — the paper's Fig 5-6 "minimum number of hops" metric.
    pub oracle_sum: f64,
    /// Queries for which a holder was reachable (oracle defined).
    pub oracle_count: u64,
}

impl FileAccum {
    /// Average number of answers per request (paper's right axis).
    pub fn avg_answers(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.answers as f64 / self.requests as f64
        }
    }

    /// Average minimum ad-hoc distance to the file (paper's left axis).
    /// Unanswered queries contribute nothing, as in the paper (distance to
    /// a file that was not found is undefined).
    pub fn avg_min_distance(&self) -> f64 {
        if self.answered == 0 {
            0.0
        } else {
            self.min_dist_sum / self.answered as f64
        }
    }

    /// Average minimum p2p (overlay) distance.
    pub fn avg_min_p2p(&self) -> f64 {
        if self.answered == 0 {
            0.0
        } else {
            self.min_p2p_sum / self.answered as f64
        }
    }

    /// Average oracle minimum distance (Figs 5-6's left axis).
    pub fn avg_oracle_distance(&self) -> f64 {
        if self.oracle_count == 0 {
            0.0
        } else {
            self.oracle_sum / self.oracle_count as f64
        }
    }

    /// Fraction of requests that got at least one answer.
    pub fn success_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.answered as f64 / self.requests as f64
        }
    }

    /// Merge another accumulator (replication aggregation).
    pub fn merge(&mut self, other: &FileAccum) {
        self.requests += other.requests;
        self.answers += other.answers;
        self.min_dist_sum += other.min_dist_sum;
        self.answered += other.answered;
        self.min_p2p_sum += other.min_p2p_sum;
        self.oracle_sum += other.oracle_sum;
        self.oracle_count += other.oracle_count;
    }
}

/// Accumulators for every file rank in the catalogue.
#[derive(Clone, Debug)]
pub struct FileMetrics {
    files: Vec<FileAccum>,
}

impl FileMetrics {
    /// Metrics for `n_files` ranks.
    pub fn new(n_files: usize) -> Self {
        FileMetrics {
            files: vec![FileAccum::default(); n_files],
        }
    }

    /// Number of file ranks tracked.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when tracking no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Record one completed query for file index `file` (0-based rank).
    /// `answer_dists` holds `(adhoc_hops, p2p_hops)` per answer; `oracle`
    /// is the BFS distance from the requirer to the nearest holder over
    /// the radio connectivity graph, when one was reachable.
    pub fn record(&mut self, file: usize, answer_dists: &[(u8, u8)], oracle: Option<u32>) {
        let acc = &mut self.files[file];
        acc.requests += 1;
        acc.answers += answer_dists.len() as u64;
        if let Some(min_adhoc) = answer_dists.iter().map(|&(a, _)| a).min() {
            let min_p2p = answer_dists.iter().map(|&(_, p)| p).min().unwrap();
            acc.answered += 1;
            acc.min_dist_sum += min_adhoc as f64;
            acc.min_p2p_sum += min_p2p as f64;
        }
        if let Some(d) = oracle {
            acc.oracle_count += 1;
            acc.oracle_sum += d as f64;
        }
    }

    /// The accumulator for a file index.
    pub fn file(&self, file: usize) -> &FileAccum {
        &self.files[file]
    }

    /// Merge run-level metrics into an aggregate.
    pub fn merge(&mut self, other: &FileMetrics) {
        assert_eq!(self.files.len(), other.files.len());
        for (a, b) in self.files.iter_mut().zip(&other.files) {
            a.merge(b);
        }
    }

    /// Rows `(rank, avg_min_distance, avg_answers)` for the first `k` files
    /// — the series of Figs 5–6 (the paper plots files 1..10). The distance
    /// is the oracle metric (nearest reachable holder), falling back to the
    /// observed answer distance when no oracle sample exists.
    pub fn series(&self, k: usize) -> Vec<(usize, f64, f64)> {
        self.files
            .iter()
            .take(k)
            .enumerate()
            .map(|(i, acc)| {
                let dist = if acc.oracle_count > 0 {
                    acc.avg_oracle_distance()
                } else {
                    acc.avg_min_distance()
                };
                (i + 1, dist, acc.avg_answers())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut m = FileMetrics::new(3);
        m.record(0, &[(3, 2), (1, 1), (5, 4)], Some(1));
        m.record(0, &[], None);
        m.record(1, &[(2, 2)], Some(2));
        let f0 = m.file(0);
        assert_eq!(f0.requests, 2);
        assert_eq!(f0.answers, 3);
        assert_eq!(f0.answered, 1);
        assert_eq!(f0.avg_answers(), 1.5);
        assert_eq!(f0.avg_min_distance(), 1.0, "minimum of 3,1,5");
        assert_eq!(f0.avg_min_p2p(), 1.0);
        assert_eq!(f0.success_rate(), 0.5);
        assert_eq!(m.file(1).avg_min_distance(), 2.0);
        assert_eq!(m.file(2).requests, 0);
    }

    #[test]
    fn empty_accumulator_yields_zeroes() {
        let acc = FileAccum::default();
        assert_eq!(acc.avg_answers(), 0.0);
        assert_eq!(acc.avg_min_distance(), 0.0);
        assert_eq!(acc.success_rate(), 0.0);
    }

    #[test]
    fn merge_combines_runs() {
        let mut a = FileMetrics::new(2);
        a.record(0, &[(2, 1)], Some(2));
        let mut b = FileMetrics::new(2);
        b.record(0, &[(4, 3)], Some(4));
        b.record(1, &[], None);
        a.merge(&b);
        assert_eq!(a.file(0).requests, 2);
        assert_eq!(a.file(0).avg_min_distance(), 3.0);
        assert_eq!(a.file(1).requests, 1);
    }

    #[test]
    fn series_covers_first_k_ranks() {
        let mut m = FileMetrics::new(20);
        m.record(0, &[(1, 1), (1, 1)], Some(1));
        m.record(9, &[(4, 2)], Some(4));
        let s = m.series(10);
        assert_eq!(s.len(), 10);
        assert_eq!(s[0], (1, 1.0, 2.0));
        assert_eq!(s[9], (10, 4.0, 1.0));
    }

    #[test]
    #[should_panic]
    fn merge_requires_same_shape() {
        let mut a = FileMetrics::new(2);
        let b = FileMetrics::new(3);
        a.merge(&b);
    }

    #[test]
    fn empty_catalogue_is_well_behaved() {
        let m = FileMetrics::new(0);
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert!(m.series(10).is_empty(), "series over no files is empty");
    }

    #[test]
    fn series_is_truncated_by_catalogue_size() {
        let mut m = FileMetrics::new(3);
        m.record(2, &[(1, 1)], None);
        let s = m.series(10);
        assert_eq!(s.len(), 3, "cannot report more ranks than tracked");
    }

    #[test]
    fn single_answerless_query_keeps_distances_undefined() {
        let mut m = FileMetrics::new(1);
        m.record(0, &[], None);
        let f = m.file(0);
        assert_eq!(f.requests, 1);
        assert_eq!(f.answered, 0);
        assert_eq!(f.avg_min_distance(), 0.0);
        assert_eq!(f.avg_min_p2p(), 0.0);
        assert_eq!(f.avg_oracle_distance(), 0.0);
        assert_eq!(f.success_rate(), 0.0);
    }

    #[test]
    fn series_falls_back_to_observed_distance_without_oracle_samples() {
        let mut m = FileMetrics::new(1);
        m.record(0, &[(3, 2)], None); // holder found, but oracle undefined
        let s = m.series(1);
        assert_eq!(s[0], (1, 3.0, 1.0), "observed min distance stands in");
    }
}
