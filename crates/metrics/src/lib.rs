//! # manet-metrics — measurement substrate for the paper's figures
//!
//! The evaluation (§7.3) uses two metric families:
//!
//! * **number of exchanged messages** — per-node received counts of each
//!   message type; Figs 7–12 plot them with nodes *decreasingly ordered* by
//!   count ([`NodeCounters`], [`sorted_desc`](NodeCounters::sorted_desc));
//! * **number of hops / answers** — per-file average minimum distance to a
//!   holder and answers per request, Figs 5–6 ([`FileMetrics`]).
//!
//! Replications are aggregated element-wise ([`average_series`]) and
//! summarized with mean / standard deviation / 95 % confidence intervals
//! ([`Summary`]).

pub mod counters;
pub mod distance;
pub mod summary;

pub use counters::{MsgKind, NodeCounters};
pub use distance::{FileAccum, FileMetrics};
pub use summary::{average_series, Summary};
