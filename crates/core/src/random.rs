//! The Random algorithm (Fig 3) — Regular plus one small-world rewiring.
//!
//! The first `MAXNCONN - 1` connections are established exactly as in the
//! Regular algorithm ("regular connections"). The last slot is a **random
//! connection**: the node floods a probe with a TTL drawn uniformly from
//! `[nhops, 2 * MAXNHOPS]`, waits for responses, and completes the
//! handshake only with the *most distant* responder. These long links are
//! the bridges of the Watts–Strogatz construction: a few of them should
//! shorten the overlay's characteristic path length while leaving its
//! clustering coefficient high. A random connection that goes down must be
//! replaced by another random connection.

use manet_des::{NodeId, Rng, SimTime};

use crate::api::{Reconfigurator, Role};
use crate::conn::{CloseReason, ConnKind, ConnStats, ConnTable};
use crate::cycle::ProbeCycle;
use crate::msg::{OvAction, OverlayMsg, ProbeKind};
use crate::params::OverlayParams;

/// An open response-gathering window for a random probe.
#[derive(Clone, Debug)]
struct Gather {
    deadline: SimTime,
    /// Best responder so far: `(hops, peer)` — maximizing hops, then the
    /// smallest id for determinism.
    best: Option<(u8, NodeId)>,
    /// Responders that were not chosen (get a Reject at resolution).
    others: Vec<NodeId>,
}

/// Random-algorithm state for one node.
#[derive(Clone, Debug)]
pub struct RandomAlgo {
    id: NodeId,
    params: OverlayParams,
    table: ConnTable,
    cycle: ProbeCycle,
    rng: Rng,
    gather: Option<Gather>,
    started: bool,
}

impl RandomAlgo {
    /// A node running the Random algorithm. `rng` drives the random TTL.
    pub fn new(id: NodeId, params: OverlayParams, rng: Rng) -> Self {
        params.validate();
        assert!(
            params.max_conn >= 2,
            "the Random algorithm needs at least one regular and one random slot"
        );
        RandomAlgo {
            id,
            params,
            table: ConnTable::new(),
            cycle: ProbeCycle::new(&params, SimTime::ZERO),
            rng,
            gather: None,
            started: false,
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Read access to the connection table.
    pub fn table(&self) -> &ConnTable {
        &self.table
    }

    fn regular_demand(&self) -> bool {
        self.table.count_kind(ConnKind::Regular) < self.params.max_conn - 1
            && self.table.len() < self.params.max_conn
    }

    fn random_demand(&self) -> bool {
        self.table.count_kind(ConnKind::Random) == 0
            && self.gather.is_none()
            && self.table.len() < self.params.max_conn
    }

    fn probe_if_due(&mut self, now: SimTime, out: &mut Vec<OvAction>) {
        if !self.started || !(self.regular_demand() || self.random_demand()) {
            return;
        }
        if let Some(nhops) = self.cycle.poll(now) {
            if self.regular_demand() {
                out.push(OvAction::Flood {
                    ttl: nhops,
                    msg: OverlayMsg::Probe {
                        kind: ProbeKind::Regular,
                    },
                });
            }
            if self.random_demand() {
                // "set randhops to a randomly chosen value between nhops
                // and 2 * MAXNHOPS"
                let randhops = self
                    .rng
                    .range_u64(nhops as u64, 2 * self.params.max_nhops as u64)
                    as u8;
                out.push(OvAction::Flood {
                    ttl: randhops.max(1),
                    msg: OverlayMsg::Probe {
                        kind: ProbeKind::Random,
                    },
                });
                self.gather = Some(Gather {
                    deadline: now + self.params.random_response_wait,
                    best: None,
                    others: Vec::new(),
                });
            }
        }
    }

    /// Resolve the gather window: accept the farthest responder, reject the
    /// rest ("only continues the three-way handshake with the most distant
    /// neighbor").
    fn resolve_gather(&mut self, now: SimTime, out: &mut Vec<OvAction>) {
        let Some(g) = self.gather.take() else { return };
        if let Some((_, chosen)) = g.best {
            if self.table.len() < self.params.max_conn
                && self.table.open_in(chosen, ConnKind::Random, now)
            {
                out.push(OvAction::Send {
                    to: chosen,
                    msg: OverlayMsg::Accept {
                        kind: ProbeKind::Random,
                    },
                });
            } else {
                out.push(OvAction::Send {
                    to: chosen,
                    msg: OverlayMsg::Reject,
                });
            }
        }
        for peer in g.others {
            out.push(OvAction::Send {
                to: peer,
                msg: OverlayMsg::Reject,
            });
        }
    }
}

impl Reconfigurator for RandomAlgo {
    fn start(&mut self, now: SimTime) -> Vec<OvAction> {
        self.started = true;
        self.cycle.reset(now);
        let mut out = Vec::new();
        self.probe_if_due(now, &mut out);
        out
    }

    fn tick(&mut self, now: SimTime) -> Vec<OvAction> {
        let mut outcome = self.table.tick(now, &self.params);
        let mut out = std::mem::take(&mut outcome.actions);
        if self.gather.as_ref().is_some_and(|g| now >= g.deadline) {
            self.resolve_gather(now, &mut out);
        }
        self.probe_if_due(now, &mut out);
        out
    }

    fn on_flood(
        &mut self,
        now: SimTime,
        origin: NodeId,
        _hops: u8,
        msg: &OverlayMsg,
    ) -> Vec<OvAction> {
        if !self.started || origin == self.id {
            return Vec::new();
        }
        match msg {
            OverlayMsg::Probe {
                kind: ProbeKind::Regular,
            } => {
                // Responder side of a regular handshake, as in Regular.
                if self.table.len() < self.params.max_conn
                    && self.table.open_out(origin, ConnKind::Regular, now)
                {
                    vec![OvAction::Send {
                        to: origin,
                        msg: OverlayMsg::Offer {
                            kind: ProbeKind::Regular,
                        },
                    }]
                } else {
                    Vec::new()
                }
            }
            OverlayMsg::Probe {
                kind: ProbeKind::Random,
            } => {
                // Answer a random probe; the seeker will pick the farthest.
                if self.table.len() < self.params.max_conn
                    && self.table.open_out(origin, ConnKind::Random, now)
                {
                    vec![OvAction::Send {
                        to: origin,
                        msg: OverlayMsg::Offer {
                            kind: ProbeKind::Random,
                        },
                    }]
                } else {
                    Vec::new()
                }
            }
            _ => Vec::new(),
        }
    }

    fn on_msg(&mut self, now: SimTime, src: NodeId, hops: u8, msg: &OverlayMsg) -> Vec<OvAction> {
        match msg {
            OverlayMsg::Offer {
                kind: ProbeKind::Regular,
            } => {
                if self.started
                    && self.regular_demand()
                    && self.table.open_in(src, ConnKind::Regular, now)
                {
                    vec![OvAction::Send {
                        to: src,
                        msg: OverlayMsg::Accept {
                            kind: ProbeKind::Regular,
                        },
                    }]
                } else {
                    self.table.note_rejected();
                    vec![OvAction::Send {
                        to: src,
                        msg: OverlayMsg::Reject,
                    }]
                }
            }
            OverlayMsg::Offer {
                kind: ProbeKind::Random,
            } => {
                // Collect into the gather window; distance = routed hops.
                match &mut self.gather {
                    Some(g) => {
                        match g.best {
                            None => g.best = Some((hops, src)),
                            Some((bh, bid)) => {
                                if hops > bh || (hops == bh && src < bid) {
                                    g.others.push(bid);
                                    g.best = Some((hops, src));
                                } else {
                                    g.others.push(src);
                                }
                            }
                        }
                        Vec::new()
                    }
                    None => {
                        self.table.note_rejected();
                        vec![OvAction::Send {
                            to: src,
                            msg: OverlayMsg::Reject,
                        }]
                    }
                }
            }
            OverlayMsg::Accept { kind } => {
                // Our Offer (regular or random) was accepted.
                let expected = match kind {
                    ProbeKind::Regular => ConnKind::Regular,
                    ProbeKind::Random => ConnKind::Random,
                    _ => return Vec::new(),
                };
                let matches_kind = self.table.get(src).is_some_and(|c| c.kind == expected);
                if matches_kind && self.table.on_accepted(src, now, &self.params) {
                    self.cycle.on_connected();
                    vec![OvAction::Send {
                        to: src,
                        msg: OverlayMsg::Confirm,
                    }]
                } else {
                    vec![OvAction::Send {
                        to: src,
                        msg: OverlayMsg::Reject,
                    }]
                }
            }
            OverlayMsg::Confirm => {
                if self.table.on_confirmed(src, now) {
                    self.cycle.on_connected();
                }
                Vec::new()
            }
            OverlayMsg::Reject => {
                self.table.close(src, CloseReason::Rejected);
                Vec::new()
            }
            OverlayMsg::Ping { token } => {
                self.table.on_ping(src, *token, now).into_iter().collect()
            }
            OverlayMsg::Pong { token } => {
                self.table.on_pong(src, *token, hops, now, &self.params);
                Vec::new()
            }
            _ => Vec::new(),
        }
    }

    fn on_unreachable(&mut self, _now: SimTime, dst: NodeId) -> Vec<OvAction> {
        self.table.on_unreachable(dst);
        Vec::new()
    }

    fn neighbors(&self) -> Vec<NodeId> {
        self.table.neighbors()
    }

    fn next_wake(&self) -> SimTime {
        let mut wake = self.table.next_wake(&self.params);
        if let Some(g) = &self.gather {
            wake = wake.min(g.deadline);
        }
        if self.started && (self.regular_demand() || self.random_demand()) {
            wake = wake.min(self.cycle.next_attempt());
        }
        wake
    }

    fn conn_stats(&self) -> &ConnStats {
        self.table.stats()
    }

    fn role(&self) -> Role {
        Role::Servent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> OverlayParams {
        OverlayParams::default()
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn algo() -> RandomAlgo {
        RandomAlgo::new(NodeId(0), params(), Rng::new(42))
    }

    fn offer_random() -> OverlayMsg {
        OverlayMsg::Offer {
            kind: ProbeKind::Random,
        }
    }

    #[test]
    fn start_emits_regular_and_random_probes() {
        let p = params();
        let mut a = algo();
        let out = a.start(t(0));
        let regs: Vec<u8> = out
            .iter()
            .filter_map(|x| match x {
                OvAction::Flood {
                    ttl,
                    msg:
                        OverlayMsg::Probe {
                            kind: ProbeKind::Regular,
                        },
                } => Some(*ttl),
                _ => None,
            })
            .collect();
        let rands: Vec<u8> = out
            .iter()
            .filter_map(|x| match x {
                OvAction::Flood {
                    ttl,
                    msg:
                        OverlayMsg::Probe {
                            kind: ProbeKind::Random,
                        },
                } => Some(*ttl),
                _ => None,
            })
            .collect();
        assert_eq!(regs, vec![p.nhops_initial]);
        assert_eq!(rands.len(), 1);
        let r = rands[0];
        assert!(
            (p.nhops_initial..=2 * p.max_nhops).contains(&r),
            "randhops {r} outside [nhops, 2*MAXNHOPS]"
        );
    }

    #[test]
    fn random_ttl_spans_the_advertised_interval() {
        let p = params();
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..40 {
            let mut a = RandomAlgo::new(NodeId(0), p, Rng::new(seed));
            for act in a.start(t(0)) {
                if let OvAction::Flood {
                    ttl,
                    msg:
                        OverlayMsg::Probe {
                            kind: ProbeKind::Random,
                        },
                } = act
                {
                    seen.insert(ttl);
                }
            }
        }
        assert!(seen.len() >= 5, "ttl should vary across seeds: {seen:?}");
        assert!(
            *seen.iter().max().unwrap() > p.max_nhops,
            "long probes exist"
        );
    }

    #[test]
    fn gather_picks_farthest_responder() {
        let p = params();
        let mut a = algo();
        a.start(t(0));
        a.on_msg(t(0), NodeId(5), 3, &offer_random());
        a.on_msg(t(0), NodeId(6), 9, &offer_random());
        a.on_msg(t(0), NodeId(7), 4, &offer_random());
        let out = a.tick(t(0) + p.random_response_wait);
        let accepts: Vec<NodeId> = out
            .iter()
            .filter_map(|x| match x {
                OvAction::Send {
                    to,
                    msg:
                        OverlayMsg::Accept {
                            kind: ProbeKind::Random,
                        },
                } => Some(*to),
                _ => None,
            })
            .collect();
        let rejects: Vec<NodeId> = out
            .iter()
            .filter_map(|x| match x {
                OvAction::Send {
                    to,
                    msg: OverlayMsg::Reject,
                } => Some(*to),
                _ => None,
            })
            .collect();
        assert_eq!(accepts, vec![NodeId(6)], "farthest wins");
        assert_eq!(rejects.len(), 2);
        assert!(rejects.contains(&NodeId(5)) && rejects.contains(&NodeId(7)));
    }

    #[test]
    fn gather_tie_breaks_on_lowest_id() {
        let p = params();
        let mut a = algo();
        a.start(t(0));
        a.on_msg(t(0), NodeId(9), 5, &offer_random());
        a.on_msg(t(0), NodeId(4), 5, &offer_random());
        let out = a.tick(t(0) + p.random_response_wait);
        let accept_to = out.iter().find_map(|x| match x {
            OvAction::Send {
                to,
                msg: OverlayMsg::Accept { .. },
            } => Some(*to),
            _ => None,
        });
        assert_eq!(accept_to, Some(NodeId(4)));
    }

    #[test]
    fn late_random_offer_is_rejected() {
        let p = params();
        let mut a = algo();
        a.start(t(0));
        let _ = a.tick(t(0) + p.random_response_wait); // empty gather resolves
        let out = a.on_msg(t(60), NodeId(5), 3, &offer_random());
        // Depending on cadence a new gather may exist at t=60; force none:
        // the reply is either collected (no action) or rejected. Both are
        // valid; what must never happen is an immediate Accept.
        assert!(out.iter().all(|x| !matches!(
            x,
            OvAction::Send {
                msg: OverlayMsg::Accept { .. },
                ..
            }
        )));
    }

    #[test]
    fn completed_random_handshake_establishes_long_link() {
        let p = params();
        let mut a = algo();
        a.start(t(0));
        a.on_msg(t(0), NodeId(6), 9, &offer_random());
        let _ = a.tick(t(0) + p.random_response_wait);
        // The chosen responder confirms.
        a.on_msg(t(3), NodeId(6), 9, &OverlayMsg::Confirm);
        assert_eq!(a.neighbors(), vec![NodeId(6)]);
        assert_eq!(a.table().count_kind(ConnKind::Random), 1);
        assert!(!a.random_demand(), "slot filled");
    }

    #[test]
    fn lost_random_connection_is_replaced() {
        let p = params();
        let mut a = algo();
        a.start(t(0));
        a.on_msg(t(0), NodeId(6), 9, &offer_random());
        let _ = a.tick(t(0) + p.random_response_wait);
        a.on_msg(t(3), NodeId(6), 9, &OverlayMsg::Confirm);
        assert!(!a.random_demand());
        a.on_unreachable(t(10), NodeId(6));
        assert!(a.random_demand(), "random slot must be refilled");
        // Next cycle attempt emits a random probe again.
        let mut now = t(10);
        let mut saw_random_probe = false;
        for _ in 0..10 {
            now = a.next_wake().max(now);
            for act in a.tick(now) {
                if matches!(
                    act,
                    OvAction::Flood {
                        msg: OverlayMsg::Probe {
                            kind: ProbeKind::Random
                        },
                        ..
                    }
                ) {
                    saw_random_probe = true;
                }
            }
            if saw_random_probe {
                break;
            }
        }
        assert!(saw_random_probe);
    }

    #[test]
    fn responder_side_answers_random_probe() {
        let mut b = RandomAlgo::new(NodeId(1), params(), Rng::new(7));
        b.start(t(0));
        let out = b.on_flood(
            t(1),
            NodeId(0),
            5,
            &OverlayMsg::Probe {
                kind: ProbeKind::Random,
            },
        );
        assert_eq!(
            out,
            vec![OvAction::Send {
                to: NodeId(0),
                msg: offer_random()
            }]
        );
        // And completes when accepted.
        let out2 = b.on_msg(
            t(2),
            NodeId(0),
            5,
            &OverlayMsg::Accept {
                kind: ProbeKind::Random,
            },
        );
        assert_eq!(
            out2,
            vec![OvAction::Send {
                to: NodeId(0),
                msg: OverlayMsg::Confirm
            }]
        );
        assert_eq!(b.table().count_kind(ConnKind::Random), 1);
    }

    #[test]
    fn regular_connections_capped_at_max_minus_one() {
        let p = params();
        let mut a = algo();
        a.start(t(0));
        for k in 1..=5u32 {
            a.on_msg(
                t(0),
                NodeId(k),
                2,
                &OverlayMsg::Offer {
                    kind: ProbeKind::Regular,
                },
            );
        }
        assert_eq!(
            a.table().count_kind(ConnKind::Regular),
            p.max_conn - 1,
            "one slot is reserved for the random connection"
        );
    }

    #[test]
    fn accept_with_mismatched_kind_is_rejected() {
        let mut b = RandomAlgo::new(NodeId(1), params(), Rng::new(7));
        b.start(t(0));
        b.on_flood(
            t(1),
            NodeId(0),
            5,
            &OverlayMsg::Probe {
                kind: ProbeKind::Random,
            },
        );
        let out = b.on_msg(
            t(2),
            NodeId(0),
            5,
            &OverlayMsg::Accept {
                kind: ProbeKind::Regular,
            },
        );
        assert_eq!(
            out,
            vec![OvAction::Send {
                to: NodeId(0),
                msg: OverlayMsg::Reject
            }]
        );
    }
}
