//! Overlay wire messages.
//!
//! These are the payloads the overlay hands to the routing layer — either as
//! a hop-limited flood (discovery probes, capture messages) or as routed
//! unicasts (handshakes, pings). The simulation wraps them, together with
//! the content layer's queries, into one payload enum implementing the
//! routing crate's `Payload`.

use manet_des::NodeId;

/// Which algorithm family a discovery probe belongs to, and therefore who
/// answers it and with what handshake.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeKind {
    /// Basic algorithm: any member answers; connection is asymmetric.
    Basic,
    /// Regular algorithm (also the Random algorithm's first
    /// `MAXNCONN - 1` connections): symmetric, three-way handshake.
    Regular,
    /// The Random algorithm's long-range connection: responders answer,
    /// the seeker picks the *farthest* one.
    Random,
    /// Hybrid masters seeking other masters: only masters answer.
    Master,
}

/// A message of the (re)configuration protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OverlayMsg {
    /// Flooded: "I am looking for connections within this radius."
    Probe {
        /// Which algorithm is asking.
        kind: ProbeKind,
    },
    /// Routed, responder → seeker: first leg of the three-way handshake
    /// ("I heard your probe and am willing to connect"). For
    /// [`ProbeKind::Basic`] this is a plain answer with no handshake state.
    Offer {
        /// Echo of the probe kind.
        kind: ProbeKind,
    },
    /// Routed, seeker → responder: second leg — the seeker accepts.
    Accept {
        /// Echo of the probe kind.
        kind: ProbeKind,
    },
    /// Routed, responder → seeker: third leg — the responder confirms the
    /// connection is live.
    Confirm,
    /// Routed: the counterpart declines (capacity reached, wrong state...).
    Reject,
    /// Routed keep-alive on an established connection.
    Ping {
        /// Matches the answering pong to the ping.
        token: u32,
    },
    /// Routed answer to a ping.
    Pong {
        /// Token copied from the ping.
        token: u32,
    },
    /// Hybrid, flooded by peers in the *initial* state: "here I am, with
    /// this qualifier".
    Capture {
        /// The sender's capability qualifier.
        qualifier: u32,
    },
    /// Hybrid, routed: a higher-qualified peer answers a capture message
    /// with its own qualifier (the paper: "it responds with a capture
    /// message").
    CaptureReply {
        /// The responder's qualifier.
        qualifier: u32,
    },
    /// Hybrid, routed: first leg of the slave handshake.
    SlaveRequest,
    /// Hybrid, routed: master accepts (or refuses) the would-be slave.
    SlaveAccept {
        /// False when the master is full or no longer a master.
        ok: bool,
    },
    /// Hybrid, routed: the slave confirms its enrollment.
    SlaveConfirm,
}

/// Coarse classification used by the paper's figures: Figs 7–8 count
/// *connect* messages, Figs 9–10 count *pings*.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MsgCategory {
    /// Everything that establishes or negotiates connections (probes,
    /// offers, handshake legs, capture and slave messages).
    Connect,
    /// Keep-alive pings.
    Ping,
    /// Keep-alive pongs.
    Pong,
}

impl OverlayMsg {
    /// The figure category of this message.
    pub fn category(&self) -> MsgCategory {
        match self {
            OverlayMsg::Ping { .. } => MsgCategory::Ping,
            OverlayMsg::Pong { .. } => MsgCategory::Pong,
            _ => MsgCategory::Connect,
        }
    }

    /// Encoded size in bytes (message tag + fields), for the radio model.
    pub fn wire_size(&self) -> u32 {
        match self {
            OverlayMsg::Probe { .. } => 2,
            OverlayMsg::Offer { .. } => 2,
            OverlayMsg::Accept { .. } => 2,
            OverlayMsg::Confirm => 1,
            OverlayMsg::Reject => 1,
            OverlayMsg::Ping { .. } => 5,
            OverlayMsg::Pong { .. } => 5,
            OverlayMsg::Capture { .. } => 5,
            OverlayMsg::CaptureReply { .. } => 5,
            OverlayMsg::SlaveRequest => 1,
            OverlayMsg::SlaveAccept { .. } => 2,
            OverlayMsg::SlaveConfirm => 1,
        }
    }
}

/// What an algorithm asks the node's network stack to do.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OvAction {
    /// Flood `msg` with the given hop limit (the controlled broadcast).
    Flood {
        /// Ad-hoc hop radius.
        ttl: u8,
        /// The message to flood.
        msg: OverlayMsg,
    },
    /// Send `msg` to `to` over the routed unicast service.
    Send {
        /// Destination node.
        to: NodeId,
        /// The message to deliver.
        msg: OverlayMsg,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories() {
        assert_eq!(
            OverlayMsg::Probe {
                kind: ProbeKind::Basic
            }
            .category(),
            MsgCategory::Connect
        );
        assert_eq!(OverlayMsg::Ping { token: 1 }.category(), MsgCategory::Ping);
        assert_eq!(OverlayMsg::Pong { token: 1 }.category(), MsgCategory::Pong);
        assert_eq!(
            OverlayMsg::Capture { qualifier: 3 }.category(),
            MsgCategory::Connect
        );
        assert_eq!(OverlayMsg::SlaveConfirm.category(), MsgCategory::Connect);
    }

    #[test]
    fn wire_sizes_are_small_and_nonzero() {
        let msgs = [
            OverlayMsg::Probe {
                kind: ProbeKind::Regular,
            },
            OverlayMsg::Offer {
                kind: ProbeKind::Regular,
            },
            OverlayMsg::Accept {
                kind: ProbeKind::Random,
            },
            OverlayMsg::Confirm,
            OverlayMsg::Reject,
            OverlayMsg::Ping { token: 9 },
            OverlayMsg::Pong { token: 9 },
            OverlayMsg::Capture { qualifier: 1 },
            OverlayMsg::CaptureReply { qualifier: 1 },
            OverlayMsg::SlaveRequest,
            OverlayMsg::SlaveAccept { ok: true },
            OverlayMsg::SlaveConfirm,
        ];
        for m in msgs {
            let s = m.wire_size();
            assert!((1..=8).contains(&s), "{m:?} has odd size {s}");
        }
    }
}
