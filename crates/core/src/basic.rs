//! The Basic algorithm (Fig 1) — the paper's comparison baseline.
//!
//! "Its main characteristic — simplicity — implies easy implementation but
//! partially ignores the dynamic nature of the network":
//!
//! * discovery floods always travel the full `NHOPS` radius (no progressive
//!   widening);
//! * the retry wait `TIMER` is fixed (no backoff);
//! * every node that hears a probe answers it, statelessly;
//! * connections are **asymmetric** references: the seeker adopts whoever
//!   answered first, and each reference owner pings independently (so a
//!   mutually-connected pair exchanges twice the keep-alive traffic of the
//!   symmetric algorithms);
//! * no distance rule — references survive until pings fail.

use manet_des::{NodeId, SimTime};

use crate::api::{Reconfigurator, Role};
use crate::conn::{stranger_pong, ConnStats, ConnTable};
use crate::msg::{OvAction, OverlayMsg, ProbeKind};
use crate::params::OverlayParams;

/// Basic-algorithm state for one node.
#[derive(Clone, Debug)]
pub struct BasicAlgo {
    id: NodeId,
    params: OverlayParams,
    table: ConnTable,
    next_attempt: SimTime,
    started: bool,
}

impl BasicAlgo {
    /// A node running the Basic algorithm.
    pub fn new(id: NodeId, params: OverlayParams) -> Self {
        params.validate();
        BasicAlgo {
            id,
            params,
            table: ConnTable::new(),
            next_attempt: SimTime::MAX,
            started: false,
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Read access to the connection table (tests, diagnostics).
    pub fn table(&self) -> &ConnTable {
        &self.table
    }

    fn wants_connections(&self) -> bool {
        self.table.len() < self.params.max_conn
    }

    fn probe_if_due(&mut self, now: SimTime, out: &mut Vec<OvAction>) {
        if self.started && self.wants_connections() && now >= self.next_attempt {
            out.push(OvAction::Flood {
                ttl: self.params.nhops_basic,
                msg: OverlayMsg::Probe {
                    kind: ProbeKind::Basic,
                },
            });
            self.next_attempt = now + self.params.basic_timer;
        }
    }
}

impl Reconfigurator for BasicAlgo {
    fn start(&mut self, now: SimTime) -> Vec<OvAction> {
        self.started = true;
        self.next_attempt = now;
        let mut out = Vec::new();
        self.probe_if_due(now, &mut out);
        out
    }

    fn tick(&mut self, now: SimTime) -> Vec<OvAction> {
        let mut outcome = self.table.tick(now, &self.params);
        let mut out = std::mem::take(&mut outcome.actions);
        // Lost references simply free capacity; the fixed-cadence probe
        // will replace them.
        self.probe_if_due(now, &mut out);
        out
    }

    fn on_flood(
        &mut self,
        _now: SimTime,
        origin: NodeId,
        _hops: u8,
        msg: &OverlayMsg,
    ) -> Vec<OvAction> {
        match msg {
            // "Every node that listens to this message answers it."
            OverlayMsg::Probe {
                kind: ProbeKind::Basic,
            } if self.started && origin != self.id => vec![OvAction::Send {
                to: origin,
                msg: OverlayMsg::Offer {
                    kind: ProbeKind::Basic,
                },
            }],
            _ => Vec::new(),
        }
    }

    fn on_msg(&mut self, now: SimTime, src: NodeId, hops: u8, msg: &OverlayMsg) -> Vec<OvAction> {
        match msg {
            OverlayMsg::Offer {
                kind: ProbeKind::Basic,
            } => {
                // Adopt the responder as a one-way reference, up to capacity.
                if self.started && self.wants_connections() {
                    self.table.adopt_basic(src, now, &self.params);
                }
                Vec::new()
            }
            OverlayMsg::Ping { token } => {
                // Answer every ping: the pinger's reference to us is
                // one-sided by design.
                vec![self
                    .table
                    .on_ping(src, *token, now)
                    .unwrap_or_else(|| stranger_pong(src, *token))]
            }
            OverlayMsg::Pong { token } => {
                self.table.on_pong(src, *token, hops, now, &self.params);
                Vec::new()
            }
            _ => Vec::new(),
        }
    }

    fn on_unreachable(&mut self, _now: SimTime, dst: NodeId) -> Vec<OvAction> {
        self.table.on_unreachable(dst);
        Vec::new()
    }

    fn neighbors(&self) -> Vec<NodeId> {
        self.table.neighbors()
    }

    fn next_wake(&self) -> SimTime {
        let probe = if self.started && self.wants_connections() {
            self.next_attempt
        } else {
            SimTime::MAX
        };
        probe.min(self.table.next_wake(&self.params))
    }

    fn conn_stats(&self) -> &ConnStats {
        self.table.stats()
    }

    fn role(&self) -> Role {
        Role::Servent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> OverlayParams {
        OverlayParams::default()
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn start_floods_full_radius() {
        let mut a = BasicAlgo::new(NodeId(0), params());
        let out = a.start(t(0));
        assert_eq!(
            out,
            vec![OvAction::Flood {
                ttl: params().nhops_basic,
                msg: OverlayMsg::Probe {
                    kind: ProbeKind::Basic
                }
            }]
        );
    }

    #[test]
    fn fixed_timer_cadence() {
        let p = params();
        let mut a = BasicAlgo::new(NodeId(0), p);
        a.start(t(0));
        assert!(a.tick(t(1)).is_empty(), "not due yet");
        let out = a.tick(t(0) + p.basic_timer);
        assert_eq!(out.len(), 1, "probe repeats after TIMER");
        assert_eq!(a.next_wake(), t(0) + p.basic_timer * 2);
    }

    #[test]
    fn answers_any_probe_even_at_capacity() {
        let p = params();
        let mut a = BasicAlgo::new(NodeId(0), p);
        a.start(t(0));
        for k in 1..=p.max_conn as u32 {
            a.on_msg(
                t(0),
                NodeId(k),
                2,
                &OverlayMsg::Offer {
                    kind: ProbeKind::Basic,
                },
            );
        }
        assert_eq!(a.neighbors().len(), p.max_conn);
        let out = a.on_flood(
            t(1),
            NodeId(99),
            3,
            &OverlayMsg::Probe {
                kind: ProbeKind::Basic,
            },
        );
        assert_eq!(out.len(), 1, "responders are stateless and always answer");
    }

    #[test]
    fn adopts_responders_up_to_capacity() {
        let p = params();
        let mut a = BasicAlgo::new(NodeId(0), p);
        a.start(t(0));
        for k in 1..=5u32 {
            a.on_msg(
                t(0),
                NodeId(k),
                2,
                &OverlayMsg::Offer {
                    kind: ProbeKind::Basic,
                },
            );
        }
        assert_eq!(a.neighbors().len(), p.max_conn, "capped at MAXNCONN");
        assert_eq!(
            a.neighbors(),
            vec![NodeId(1), NodeId(2), NodeId(3)],
            "first answers win"
        );
    }

    #[test]
    fn no_probe_when_full() {
        let p = params();
        let mut a = BasicAlgo::new(NodeId(0), p);
        a.start(t(0));
        for k in 1..=p.max_conn as u32 {
            a.on_msg(
                t(0),
                NodeId(k),
                2,
                &OverlayMsg::Offer {
                    kind: ProbeKind::Basic,
                },
            );
        }
        let out = a.tick(t(0) + p.basic_timer);
        assert!(
            out.iter().all(|x| !matches!(x, OvAction::Flood { .. })),
            "no discovery while at MAXNCONN"
        );
    }

    #[test]
    fn pings_strangers_get_pongs() {
        let mut a = BasicAlgo::new(NodeId(0), params());
        a.start(t(0));
        let out = a.on_msg(t(1), NodeId(9), 2, &OverlayMsg::Ping { token: 5 });
        assert_eq!(
            out,
            vec![OvAction::Send {
                to: NodeId(9),
                msg: OverlayMsg::Pong { token: 5 }
            }]
        );
    }

    #[test]
    fn lost_reference_is_replaced_by_next_probe() {
        let p = params();
        let mut a = BasicAlgo::new(NodeId(0), p);
        a.start(t(0));
        a.on_msg(
            t(0),
            NodeId(1),
            2,
            &OverlayMsg::Offer {
                kind: ProbeKind::Basic,
            },
        );
        // Ping goes out, no pong arrives -> reference dies.
        let out = a.tick(t(0) + p.ping_interval);
        assert!(out.iter().any(|x| matches!(
            x,
            OvAction::Send {
                msg: OverlayMsg::Ping { .. },
                ..
            }
        )));
        let out2 = a.tick(t(0) + p.ping_interval + p.pong_timeout);
        assert!(a.neighbors().is_empty());
        // The same tick (or the next due one) keeps probing.
        let probing = out2
            .iter()
            .chain(a.tick(t(60)).iter())
            .any(|x| matches!(x, OvAction::Flood { .. }));
        assert!(probing);
    }

    #[test]
    fn ignores_messages_before_start() {
        let mut a = BasicAlgo::new(NodeId(0), params());
        let out = a.on_flood(
            t(0),
            NodeId(2),
            1,
            &OverlayMsg::Probe {
                kind: ProbeKind::Basic,
            },
        );
        assert!(out.is_empty(), "not in the p2p network yet");
    }

    #[test]
    fn own_probe_echo_is_ignored() {
        let mut a = BasicAlgo::new(NodeId(0), params());
        a.start(t(0));
        let out = a.on_flood(
            t(0),
            NodeId(0),
            0,
            &OverlayMsg::Probe {
                kind: ProbeKind::Basic,
            },
        );
        assert!(out.is_empty());
    }
}
