//! Table 1 of the paper: the qualitative taxonomy of p2p topologies.
//!
//! The paper derives (from Minar's survey) a table of properties per
//! distributed-topology family and uses it to justify studying only the
//! decentralized and hybrid configurations. This module encodes that table
//! so the `reproduce` binary can print it verbatim.

/// A p2p topology family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// A central server coordinates peers (Napster's search index).
    Centralized,
    /// All peers have equal roles (Gnutella, Freenet).
    Decentralized,
    /// Super-peers form a decentralized core; leaves attach to them
    /// (KaZaA, Morpheus).
    Hybrid,
}

/// Tri-state answer used by Table 1 (the paper's "depend", "maybe",
/// "apparently" qualifiers).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Plain yes.
    Yes,
    /// Plain no.
    No,
    /// The paper's hedge, with its wording.
    Qualified(&'static str),
}

impl Verdict {
    /// The cell text as printed in Table 1.
    pub fn text(&self) -> &'static str {
        match self {
            Verdict::Yes => "yes",
            Verdict::No => "no",
            Verdict::Qualified(s) => s,
        }
    }
}

/// One row of Table 1.
#[derive(Clone, Copy, Debug)]
pub struct Property {
    /// Row label.
    pub name: &'static str,
    /// Centralized / Decentralized / Hybrid cells.
    pub cells: [Verdict; 3],
}

/// Table 1, row by row, exactly as the paper prints it.
pub const TABLE_1: &[Property] = &[
    Property {
        name: "Manageable",
        cells: [Verdict::Yes, Verdict::No, Verdict::No],
    },
    Property {
        name: "Extensible",
        cells: [Verdict::No, Verdict::Yes, Verdict::Yes],
    },
    Property {
        name: "Fault-Tolerant",
        cells: [Verdict::No, Verdict::Yes, Verdict::Yes],
    },
    Property {
        name: "Secure",
        cells: [Verdict::Yes, Verdict::No, Verdict::No],
    },
    Property {
        name: "Lawsuit-proof",
        cells: [Verdict::No, Verdict::Yes, Verdict::Yes],
    },
    Property {
        name: "Scalable",
        cells: [
            Verdict::Qualified("depend"),
            Verdict::Qualified("maybe"),
            Verdict::Qualified("apparently"),
        ],
    },
];

/// Render Table 1 as aligned plain text.
pub fn render_table_1() -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<16}{:<14}{:<16}{:<12}\n",
        "", "Centralized", "Decentralized", "Hybrid"
    ));
    for row in TABLE_1 {
        s.push_str(&format!(
            "{:<16}{:<14}{:<16}{:<12}\n",
            row.name,
            row.cells[0].text(),
            row.cells[1].text(),
            row.cells[2].text()
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_six_rows() {
        assert_eq!(TABLE_1.len(), 6);
    }

    #[test]
    fn decentralized_and_hybrid_are_extensible() {
        let ext = &TABLE_1[1];
        assert_eq!(ext.name, "Extensible");
        assert_eq!(ext.cells[1], Verdict::Yes);
        assert_eq!(ext.cells[2], Verdict::Yes);
        assert_eq!(ext.cells[0], Verdict::No);
    }

    #[test]
    fn render_contains_all_rows_and_columns() {
        let text = render_table_1();
        for row in TABLE_1 {
            assert!(text.contains(row.name));
        }
        assert!(text.contains("apparently"));
        assert!(text.contains("Centralized"));
    }
}
