//! The Hybrid algorithm (Fig 4) — master/slave clustering for
//! heterogeneous networks.
//!
//! Every node carries a **qualifier** (battery, CPU — any capability
//! score). Peers start in the *initial* state and flood capture messages;
//! qualifier comparisons sort the population into **masters** (cluster
//! heads, which talk to each other with the Regular algorithm's machinery)
//! and **slaves** (which talk only to their master). The rules, from the
//! paper:
//!
//! * an initial peer that hears a capture from a *higher*-qualified peer
//!   tries to become its slave (three-way handshake, passing through the
//!   *reserved* state);
//! * a peer with a *bigger* qualifier in initial or master state answers a
//!   capture with a capture of its own, so the smaller peer learns whom to
//!   enroll with;
//! * a peer whose discovery radius cycles to `0` without finding anyone
//!   entitles itself a master;
//! * a master that has held no slaves for `MAXTIMERMASTER` reverts to
//!   initial (it "could, potentially, be another peer's slave");
//! * a slave that drifts more than `MAXDIST` hops from its master closes
//!   the link and looks for a new master.
//!
//! Qualifier ties are broken by node id, so any two nodes compare strictly.

use manet_des::{NodeId, SimTime};

use crate::api::{Reconfigurator, Role};
use crate::conn::{CloseReason, ConnKind, ConnStats, ConnTable};
use crate::cycle::ProbeCycle;
use crate::msg::{OvAction, OverlayMsg, ProbeKind};
use crate::params::OverlayParams;

/// The paper's four peer states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    Initial,
    Reserved,
    Master,
    Slave,
}

/// Hybrid-algorithm state for one node.
#[derive(Clone, Debug)]
pub struct HybridAlgo {
    id: NodeId,
    params: OverlayParams,
    qualifier: u32,
    state: State,
    table: ConnTable,
    cycle: ProbeCycle,
    /// Reserved state: the master candidate we sent a SlaveRequest to.
    candidate: Option<NodeId>,
    /// Slave state: our master.
    master: Option<NodeId>,
    /// Master state: last instant we held at least one slave (drives the
    /// `MAXTIMERMASTER` reversion).
    last_had_slaves: SimTime,
    started: bool,
}

impl HybridAlgo {
    /// A node with the given capability `qualifier`.
    pub fn new(id: NodeId, params: OverlayParams, qualifier: u32) -> Self {
        params.validate();
        HybridAlgo {
            id,
            params,
            qualifier,
            state: State::Initial,
            table: ConnTable::new(),
            cycle: ProbeCycle::new(&params, SimTime::ZERO),
            candidate: None,
            master: None,
            last_had_slaves: SimTime::ZERO,
            started: false,
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's capability qualifier.
    pub fn qualifier(&self) -> u32 {
        self.qualifier
    }

    /// Read access to the connection table.
    pub fn table(&self) -> &ConnTable {
        &self.table
    }

    /// The master this slave is attached to, if any.
    pub fn master_of(&self) -> Option<NodeId> {
        self.master
    }

    /// Strict capability order: `(qualifier, id)` lexicographic.
    fn outranks(&self, other_q: u32, other_id: NodeId) -> bool {
        (self.qualifier, self.id) > (other_q, other_id)
    }

    fn slave_count(&self) -> usize {
        self.table.count_kind(ConnKind::Slave)
    }

    fn master_link_count(&self) -> usize {
        self.table.count_kind(ConnKind::Master)
    }

    /// Enter `state`. Returning to `Initial` after a failure keeps the
    /// current backoff and waits one timer before the next capture flood
    /// (`cycle.rearm`) — an immediate re-flood would hit the same full
    /// master again and storm the network; [`start`](Reconfigurator::start)
    /// resets the cycle explicitly for the true join.
    fn transition(&mut self, state: State, now: SimTime) {
        self.state = state;
        self.candidate = None;
        if state != State::Slave {
            self.master = None;
        }
        match state {
            State::Master => {
                self.last_had_slaves = now;
                self.cycle.reset(now);
            }
            State::Initial => {
                // One timer of delay breaks re-enrollment storms; further
                // escalation comes from the cycle's own 0-slot doubling.
                self.cycle.rearm(now);
            }
            State::Reserved | State::Slave => {}
        }
    }

    fn probe_if_due(&mut self, now: SimTime, out: &mut Vec<OvAction>) {
        if !self.started {
            return;
        }
        match self.state {
            State::Initial => {
                // The raw cycle: the 0 slot is the become-master trigger.
                if let Some(slot) = self.cycle.poll_raw(now) {
                    if slot == 0 {
                        self.transition(State::Master, now);
                    } else {
                        out.push(OvAction::Flood {
                            ttl: slot,
                            msg: OverlayMsg::Capture {
                                qualifier: self.qualifier,
                            },
                        });
                    }
                }
            }
            State::Master => {
                // "Use the regular algorithm to contact other masters."
                if self.master_link_count() < self.params.max_conn {
                    if let Some(nhops) = self.cycle.poll(now) {
                        out.push(OvAction::Flood {
                            ttl: nhops,
                            msg: OverlayMsg::Probe {
                                kind: ProbeKind::Master,
                            },
                        });
                    }
                }
            }
            State::Reserved | State::Slave => {}
        }
    }
}

impl Reconfigurator for HybridAlgo {
    fn start(&mut self, now: SimTime) -> Vec<OvAction> {
        self.started = true;
        self.transition(State::Initial, now);
        self.cycle.reset(now); // the join probes immediately
        let mut out = Vec::new();
        self.probe_if_due(now, &mut out);
        out
    }

    fn tick(&mut self, now: SimTime) -> Vec<OvAction> {
        let mut outcome = self.table.tick(now, &self.params);
        let mut out = std::mem::take(&mut outcome.actions);

        for (peer, kind, _reason) in outcome.closed {
            match (self.state, kind) {
                // Our link to the master died: look for a new one.
                (State::Slave, ConnKind::Slave) if Some(peer) == self.master => {
                    self.transition(State::Initial, now);
                }
                // The slave handshake fell through.
                (State::Reserved, ConnKind::Slave) if Some(peer) == self.candidate => {
                    self.transition(State::Initial, now);
                }
                _ => {}
            }
        }

        if self.state == State::Master {
            if self.slave_count() > 0 {
                self.last_had_slaves = now;
            } else if now >= self.last_had_slaves + self.params.master_idle_timeout {
                // "This master could, potentially, be another peer slave."
                let dropped = self.table.close_all(CloseReason::Reset);
                let _ = dropped;
                self.transition(State::Initial, now);
            }
        }

        self.probe_if_due(now, &mut out);
        out
    }

    fn on_flood(
        &mut self,
        now: SimTime,
        origin: NodeId,
        _hops: u8,
        msg: &OverlayMsg,
    ) -> Vec<OvAction> {
        if !self.started || origin == self.id {
            return Vec::new();
        }
        match msg {
            OverlayMsg::Capture { qualifier } => match self.state {
                State::Initial => {
                    if self.outranks(*qualifier, origin) {
                        // We are stronger: advertise ourselves back.
                        vec![OvAction::Send {
                            to: origin,
                            msg: OverlayMsg::CaptureReply {
                                qualifier: self.qualifier,
                            },
                        }]
                    } else {
                        // They are stronger: try to become their slave.
                        if self.table.open_out(origin, ConnKind::Slave, now) {
                            self.state = State::Reserved;
                            self.candidate = Some(origin);
                            vec![OvAction::Send {
                                to: origin,
                                msg: OverlayMsg::SlaveRequest,
                            }]
                        } else {
                            Vec::new()
                        }
                    }
                }
                State::Master => {
                    if self.outranks(*qualifier, origin)
                        && self.slave_count() < self.params.max_slaves
                    {
                        vec![OvAction::Send {
                            to: origin,
                            msg: OverlayMsg::CaptureReply {
                                qualifier: self.qualifier,
                            },
                        }]
                    } else {
                        Vec::new()
                    }
                }
                // "Peers in slave or reserved state don't communicate with
                // anyone else."
                State::Reserved | State::Slave => Vec::new(),
            },
            OverlayMsg::Probe {
                kind: ProbeKind::Master,
            } => {
                // Master-to-master discovery: only masters answer.
                if self.state == State::Master
                    && self.master_link_count() < self.params.max_conn
                    && self.table.open_out(origin, ConnKind::Master, now)
                {
                    vec![OvAction::Send {
                        to: origin,
                        msg: OverlayMsg::Offer {
                            kind: ProbeKind::Master,
                        },
                    }]
                } else {
                    Vec::new()
                }
            }
            _ => Vec::new(),
        }
    }

    fn on_msg(&mut self, now: SimTime, src: NodeId, hops: u8, msg: &OverlayMsg) -> Vec<OvAction> {
        if !self.started {
            return Vec::new();
        }
        match msg {
            OverlayMsg::CaptureReply { qualifier } => {
                // A stronger peer answered our capture flood.
                if self.state == State::Initial
                    && !self.outranks(*qualifier, src)
                    && self.table.open_out(src, ConnKind::Slave, now)
                {
                    self.state = State::Reserved;
                    self.candidate = Some(src);
                    vec![OvAction::Send {
                        to: src,
                        msg: OverlayMsg::SlaveRequest,
                    }]
                } else {
                    Vec::new()
                }
            }
            OverlayMsg::SlaveRequest => {
                let can_host = matches!(self.state, State::Initial | State::Master)
                    && self.slave_count() < self.params.max_slaves;
                if can_host && self.table.open_in(src, ConnKind::Slave, now) {
                    if self.state == State::Initial {
                        // First recruit turns us into a master.
                        self.transition(State::Master, now);
                    }
                    vec![OvAction::Send {
                        to: src,
                        msg: OverlayMsg::SlaveAccept { ok: true },
                    }]
                } else {
                    self.table.note_rejected();
                    vec![OvAction::Send {
                        to: src,
                        msg: OverlayMsg::SlaveAccept { ok: false },
                    }]
                }
            }
            OverlayMsg::SlaveAccept { ok } => {
                if self.state != State::Reserved || self.candidate != Some(src) {
                    return Vec::new();
                }
                if *ok && self.table.on_accepted(src, now, &self.params) {
                    self.state = State::Slave;
                    self.master = Some(src);
                    self.candidate = None;
                    vec![OvAction::Send {
                        to: src,
                        msg: OverlayMsg::SlaveConfirm,
                    }]
                } else {
                    self.table.close(src, CloseReason::Rejected);
                    self.transition(State::Initial, now);
                    Vec::new()
                }
            }
            OverlayMsg::SlaveConfirm => {
                if self.table.on_confirmed(src, now) {
                    self.last_had_slaves = now;
                }
                Vec::new()
            }
            OverlayMsg::Offer {
                kind: ProbeKind::Master,
            } => {
                if self.state == State::Master
                    && self.master_link_count() < self.params.max_conn
                    && self.table.open_in(src, ConnKind::Master, now)
                {
                    vec![OvAction::Send {
                        to: src,
                        msg: OverlayMsg::Accept {
                            kind: ProbeKind::Master,
                        },
                    }]
                } else {
                    self.table.note_rejected();
                    vec![OvAction::Send {
                        to: src,
                        msg: OverlayMsg::Reject,
                    }]
                }
            }
            OverlayMsg::Accept {
                kind: ProbeKind::Master,
            } => {
                let matches_kind = self
                    .table
                    .get(src)
                    .is_some_and(|c| c.kind == ConnKind::Master);
                if matches_kind && self.table.on_accepted(src, now, &self.params) {
                    self.cycle.on_connected();
                    vec![OvAction::Send {
                        to: src,
                        msg: OverlayMsg::Confirm,
                    }]
                } else {
                    vec![OvAction::Send {
                        to: src,
                        msg: OverlayMsg::Reject,
                    }]
                }
            }
            OverlayMsg::Confirm => {
                if self.table.on_confirmed(src, now) {
                    self.cycle.on_connected();
                }
                Vec::new()
            }
            OverlayMsg::Reject => {
                if self.table.close(src, CloseReason::Rejected).is_some()
                    && self.state == State::Reserved
                    && self.candidate == Some(src)
                {
                    self.transition(State::Initial, now);
                }
                Vec::new()
            }
            OverlayMsg::Ping { token } => {
                self.table.on_ping(src, *token, now).into_iter().collect()
            }
            OverlayMsg::Pong { token } => {
                if let Some((peer, kind, _)) =
                    self.table.on_pong(src, *token, hops, now, &self.params)
                {
                    // "A slave too far away from its master should look for
                    // another master on its neighborhood."
                    if self.state == State::Slave
                        && kind == ConnKind::Slave
                        && Some(peer) == self.master
                    {
                        self.transition(State::Initial, now);
                    }
                }
                Vec::new()
            }
            _ => Vec::new(),
        }
    }

    fn on_unreachable(&mut self, now: SimTime, dst: NodeId) -> Vec<OvAction> {
        if let Some((peer, kind, _)) = self.table.on_unreachable(dst) {
            match (self.state, kind) {
                (State::Slave, ConnKind::Slave) if Some(peer) == self.master => {
                    self.transition(State::Initial, now);
                }
                (State::Reserved, ConnKind::Slave) if Some(peer) == self.candidate => {
                    self.transition(State::Initial, now);
                }
                _ => {}
            }
        }
        Vec::new()
    }

    fn neighbors(&self) -> Vec<NodeId> {
        self.table.neighbors()
    }

    fn next_wake(&self) -> SimTime {
        let mut wake = self.table.next_wake(&self.params);
        if self.started {
            match self.state {
                State::Initial => wake = wake.min(self.cycle.next_attempt()),
                State::Master => {
                    if self.master_link_count() < self.params.max_conn {
                        wake = wake.min(self.cycle.next_attempt());
                    }
                    let idle_deadline = self.last_had_slaves + self.params.master_idle_timeout;
                    wake = wake.min(idle_deadline);
                }
                State::Reserved | State::Slave => {}
            }
        }
        wake
    }

    fn conn_stats(&self) -> &ConnStats {
        self.table.stats()
    }

    fn role(&self) -> Role {
        match self.state {
            State::Initial => Role::Initial,
            State::Reserved => Role::Reserved,
            State::Master => Role::Master,
            State::Slave => Role::Slave,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> OverlayParams {
        OverlayParams::default()
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn capture(q: u32) -> OverlayMsg {
        OverlayMsg::Capture { qualifier: q }
    }

    /// Run the full slave-enrollment handshake between a weak and a strong
    /// node, returning them as (slave, master).
    fn enroll() -> (HybridAlgo, HybridAlgo) {
        let mut weak = HybridAlgo::new(NodeId(1), params(), 10);
        let mut strong = HybridAlgo::new(NodeId(2), params(), 90);
        weak.start(t(0));
        strong.start(t(0));
        // Weak hears strong's capture and requests enrollment.
        let req = weak.on_flood(t(1), NodeId(2), 2, &capture(90));
        assert_eq!(
            req,
            vec![OvAction::Send {
                to: NodeId(2),
                msg: OverlayMsg::SlaveRequest
            }]
        );
        assert_eq!(weak.role(), Role::Reserved);
        let acc = strong.on_msg(t(1), NodeId(1), 2, &OverlayMsg::SlaveRequest);
        assert_eq!(
            acc,
            vec![OvAction::Send {
                to: NodeId(1),
                msg: OverlayMsg::SlaveAccept { ok: true }
            }]
        );
        let conf = weak.on_msg(t(2), NodeId(2), 2, &OverlayMsg::SlaveAccept { ok: true });
        assert_eq!(
            conf,
            vec![OvAction::Send {
                to: NodeId(2),
                msg: OverlayMsg::SlaveConfirm
            }]
        );
        strong.on_msg(t(2), NodeId(1), 2, &OverlayMsg::SlaveConfirm);
        (weak, strong)
    }

    #[test]
    fn start_floods_capture_with_initial_radius() {
        let mut a = HybridAlgo::new(NodeId(0), params(), 50);
        let out = a.start(t(0));
        assert_eq!(
            out,
            vec![OvAction::Flood {
                ttl: 2,
                msg: capture(50)
            }]
        );
        assert_eq!(a.role(), Role::Initial);
    }

    #[test]
    fn enrollment_creates_master_and_slave() {
        let (slave, master) = enroll();
        assert_eq!(slave.role(), Role::Slave);
        assert_eq!(slave.master_of(), Some(NodeId(2)));
        assert_eq!(master.role(), Role::Master);
        assert_eq!(master.neighbors(), vec![NodeId(1)]);
        assert_eq!(slave.neighbors(), vec![NodeId(2)]);
        assert!(
            slave.table().get(NodeId(2)).unwrap().pinger,
            "the slave pings its master"
        );
    }

    #[test]
    fn stronger_initial_peer_replies_with_capture() {
        let mut strong = HybridAlgo::new(NodeId(2), params(), 90);
        strong.start(t(0));
        let out = strong.on_flood(t(1), NodeId(1), 2, &capture(10));
        assert_eq!(
            out,
            vec![OvAction::Send {
                to: NodeId(1),
                msg: OverlayMsg::CaptureReply { qualifier: 90 }
            }]
        );
        assert_eq!(strong.role(), Role::Initial, "reply does not change state");
    }

    #[test]
    fn capture_reply_triggers_enrollment() {
        let mut weak = HybridAlgo::new(NodeId(1), params(), 10);
        weak.start(t(0));
        let out = weak.on_msg(
            t(1),
            NodeId(2),
            2,
            &OverlayMsg::CaptureReply { qualifier: 90 },
        );
        assert_eq!(
            out,
            vec![OvAction::Send {
                to: NodeId(2),
                msg: OverlayMsg::SlaveRequest
            }]
        );
        assert_eq!(weak.role(), Role::Reserved);
    }

    #[test]
    fn qualifier_tie_broken_by_id() {
        // Equal qualifiers: the higher id wins.
        let mut lo = HybridAlgo::new(NodeId(1), params(), 50);
        lo.start(t(0));
        let out = lo.on_flood(t(1), NodeId(2), 2, &capture(50));
        assert_eq!(
            out,
            vec![OvAction::Send {
                to: NodeId(2),
                msg: OverlayMsg::SlaveRequest
            }]
        );
        let mut hi = HybridAlgo::new(NodeId(2), params(), 50);
        hi.start(t(0));
        let out2 = hi.on_flood(t(1), NodeId(1), 2, &capture(50));
        assert!(matches!(
            out2[0],
            OvAction::Send {
                msg: OverlayMsg::CaptureReply { .. },
                ..
            }
        ));
    }

    #[test]
    fn master_caps_slaves_at_maxnslaves() {
        let p = params();
        let mut m = HybridAlgo::new(NodeId(0), p, 99);
        m.start(t(0));
        for k in 1..=(p.max_slaves as u32) {
            let out = m.on_msg(t(1), NodeId(k), 2, &OverlayMsg::SlaveRequest);
            assert!(matches!(
                out[0],
                OvAction::Send {
                    msg: OverlayMsg::SlaveAccept { ok: true },
                    ..
                }
            ));
        }
        let out = m.on_msg(t(1), NodeId(50), 2, &OverlayMsg::SlaveRequest);
        assert!(matches!(
            out[0],
            OvAction::Send {
                msg: OverlayMsg::SlaveAccept { ok: false },
                ..
            }
        ));
    }

    #[test]
    fn refused_enrollment_returns_to_initial() {
        let mut weak = HybridAlgo::new(NodeId(1), params(), 10);
        weak.start(t(0));
        weak.on_flood(t(1), NodeId(2), 2, &capture(90));
        assert_eq!(weak.role(), Role::Reserved);
        weak.on_msg(t(2), NodeId(2), 2, &OverlayMsg::SlaveAccept { ok: false });
        assert_eq!(weak.role(), Role::Initial);
        assert!(weak.table().is_empty());
    }

    #[test]
    fn initial_cycle_exhaustion_makes_master() {
        let mut a = HybridAlgo::new(NodeId(0), params(), 50);
        a.start(t(0));
        // Walk the cycle 2,4,6,0: the 0 slot flips the state.
        let mut now = t(0);
        for _ in 0..3 {
            now = a.next_wake().max(now);
            let _ = a.tick(now);
        }
        assert_eq!(a.role(), Role::Master);
    }

    #[test]
    fn idle_master_reverts_to_initial() {
        let p = params();
        let mut a = HybridAlgo::new(NodeId(0), p, 50);
        a.start(t(0));
        let mut now = t(0);
        for _ in 0..3 {
            now = a.next_wake().max(now);
            let _ = a.tick(now);
        }
        assert_eq!(a.role(), Role::Master);
        // No slaves ever arrive: after MAXTIMERMASTER the node gives up.
        let _ = a.tick(now + p.master_idle_timeout);
        assert_eq!(a.role(), Role::Initial);
    }

    #[test]
    fn master_with_slaves_does_not_revert() {
        // The slave pings every ping_interval; as long as those arrive the
        // master must stay a master well past MAXTIMERMASTER.
        let p = params();
        let (_, mut master) = enroll();
        let horizon = t(2) + p.master_idle_timeout * 2;
        let mut now = t(2);
        while now < horizon {
            now += p.ping_interval / 2;
            let _ = master.tick(now);
            master.on_msg(now, NodeId(1), 2, &OverlayMsg::Ping { token: 0 });
            assert_eq!(master.role(), Role::Master, "reverted at {now}");
        }
    }

    #[test]
    fn slave_losing_master_restarts_search() {
        let p = params();
        let (mut slave, _) = enroll();
        // The slave pings; no pong ever arrives -> PongTimeout close.
        let mut now = t(2);
        for _ in 0..10 {
            now = slave.next_wake().max(now);
            let _ = slave.tick(now);
            if slave.role() == Role::Initial {
                break;
            }
        }
        assert_eq!(
            slave.role(),
            Role::Initial,
            "slave must re-enter the search"
        );
        assert!(slave.master_of().is_none());
        let _ = p;
    }

    #[test]
    fn slave_too_far_from_master_detaches() {
        let p = params();
        let (mut slave, _) = enroll();
        // First ping goes out at establish + ping_interval.
        let ping_at = t(2) + p.ping_interval;
        let out = slave.tick(ping_at);
        let token = out
            .iter()
            .find_map(|a| match a {
                OvAction::Send {
                    msg: OverlayMsg::Ping { token },
                    ..
                } => Some(*token),
                _ => None,
            })
            .expect("slave pings master");
        // The pong comes back from MAXDIST hops away: too far.
        slave.on_msg(ping_at, NodeId(2), p.max_dist, &OverlayMsg::Pong { token });
        assert_eq!(slave.role(), Role::Initial);
    }

    #[test]
    fn masters_interconnect_via_master_probes() {
        let p = params();
        let mut m1 = HybridAlgo::new(NodeId(1), p, 80);
        let mut m2 = HybridAlgo::new(NodeId(2), p, 85);
        // Force both into master state via cycle exhaustion.
        for m in [&mut m1, &mut m2] {
            m.start(t(0));
            let mut now = t(0);
            for _ in 0..3 {
                now = m.next_wake().max(now);
                let _ = m.tick(now);
            }
            assert_eq!(m.role(), Role::Master);
        }
        // m1 probes; m2 offers; full handshake.
        let offer = m2.on_flood(
            t(40),
            NodeId(1),
            3,
            &OverlayMsg::Probe {
                kind: ProbeKind::Master,
            },
        );
        assert!(matches!(
            offer[0],
            OvAction::Send {
                msg: OverlayMsg::Offer {
                    kind: ProbeKind::Master
                },
                ..
            }
        ));
        let acc = m1.on_msg(
            t(40),
            NodeId(2),
            3,
            &OverlayMsg::Offer {
                kind: ProbeKind::Master,
            },
        );
        assert!(matches!(
            acc[0],
            OvAction::Send {
                msg: OverlayMsg::Accept {
                    kind: ProbeKind::Master
                },
                ..
            }
        ));
        let conf = m2.on_msg(
            t(41),
            NodeId(1),
            3,
            &OverlayMsg::Accept {
                kind: ProbeKind::Master,
            },
        );
        assert!(matches!(
            conf[0],
            OvAction::Send {
                msg: OverlayMsg::Confirm,
                ..
            }
        ));
        m1.on_msg(t(41), NodeId(2), 3, &OverlayMsg::Confirm);
        assert_eq!(m1.neighbors(), vec![NodeId(2)]);
        assert_eq!(m2.neighbors(), vec![NodeId(1)]);
    }

    #[test]
    fn non_masters_ignore_master_probes() {
        let mut a = HybridAlgo::new(NodeId(0), params(), 50);
        a.start(t(0));
        let out = a.on_flood(
            t(1),
            NodeId(9),
            2,
            &OverlayMsg::Probe {
                kind: ProbeKind::Master,
            },
        );
        assert!(out.is_empty());
    }

    #[test]
    fn reserved_peers_ignore_captures() {
        let mut weak = HybridAlgo::new(NodeId(1), params(), 10);
        weak.start(t(0));
        weak.on_flood(t(1), NodeId(2), 2, &capture(90));
        assert_eq!(weak.role(), Role::Reserved);
        let out = weak.on_flood(t(1), NodeId(3), 2, &capture(95));
        assert!(
            out.is_empty(),
            "reserved peers only talk to their candidate"
        );
    }

    #[test]
    fn slave_enrollment_turns_initial_host_into_master() {
        let mut host = HybridAlgo::new(NodeId(5), params(), 70);
        host.start(t(0));
        assert_eq!(host.role(), Role::Initial);
        host.on_msg(t(1), NodeId(3), 2, &OverlayMsg::SlaveRequest);
        assert_eq!(host.role(), Role::Master, "first recruit promotes the host");
    }
}
