//! The Regular algorithm (Fig 2).
//!
//! Four improvements over Basic, quoting the paper:
//!
//! 1. the discovery radius grows *progressively* (`nhops` cycles
//!    `NHOPS_INITIAL .. MAXNHOPS` in steps of 2) — less flood traffic;
//! 2. connected neighbors must stay within `MAXDIST` ad-hoc hops, keeping
//!    keep-alive traffic local;
//! 3. connections are **symmetric** (three-way handshake) and only one side
//!    pings — half the keep-alive messages;
//! 4. the retry timer doubles after every fruitless sweep (up to
//!    `MAXTIMER`) and resets when a connection is established.

use manet_des::{NodeId, SimTime};

use crate::api::{Reconfigurator, Role};
use crate::conn::{ConnKind, ConnStats, ConnTable};
use crate::cycle::ProbeCycle;
use crate::msg::{OvAction, OverlayMsg, ProbeKind};
use crate::params::OverlayParams;

/// Regular-algorithm state for one node.
#[derive(Clone, Debug)]
pub struct RegularAlgo {
    id: NodeId,
    params: OverlayParams,
    table: ConnTable,
    cycle: ProbeCycle,
    started: bool,
}

impl RegularAlgo {
    /// A node running the Regular algorithm.
    pub fn new(id: NodeId, params: OverlayParams) -> Self {
        params.validate();
        RegularAlgo {
            id,
            params,
            table: ConnTable::new(),
            cycle: ProbeCycle::new(&params, SimTime::ZERO),
            started: false,
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Read access to the connection table.
    pub fn table(&self) -> &ConnTable {
        &self.table
    }

    /// Current backoff (tests/diagnostics).
    pub fn cycle(&self) -> &ProbeCycle {
        &self.cycle
    }

    fn wants_connections(&self) -> bool {
        self.table.len() < self.params.max_conn
    }

    fn probe_if_due(&mut self, now: SimTime, out: &mut Vec<OvAction>) {
        if !self.started || !self.wants_connections() {
            return;
        }
        if let Some(nhops) = self.cycle.poll(now) {
            out.push(OvAction::Flood {
                ttl: nhops,
                msg: OverlayMsg::Probe {
                    kind: ProbeKind::Regular,
                },
            });
        }
    }
}

impl Reconfigurator for RegularAlgo {
    fn start(&mut self, now: SimTime) -> Vec<OvAction> {
        self.started = true;
        self.cycle.reset(now);
        let mut out = Vec::new();
        self.probe_if_due(now, &mut out);
        out
    }

    fn tick(&mut self, now: SimTime) -> Vec<OvAction> {
        let mut outcome = self.table.tick(now, &self.params);
        let mut out = std::mem::take(&mut outcome.actions);
        self.probe_if_due(now, &mut out);
        out
    }

    fn on_flood(
        &mut self,
        now: SimTime,
        origin: NodeId,
        _hops: u8,
        msg: &OverlayMsg,
    ) -> Vec<OvAction> {
        match msg {
            OverlayMsg::Probe {
                kind: ProbeKind::Regular,
            } if self.started && origin != self.id => {
                // "A node willing to connect starts a three-way handshake
                // with the sender."
                if self.wants_connections() && self.table.open_out(origin, ConnKind::Regular, now) {
                    vec![OvAction::Send {
                        to: origin,
                        msg: OverlayMsg::Offer {
                            kind: ProbeKind::Regular,
                        },
                    }]
                } else {
                    Vec::new()
                }
            }
            _ => Vec::new(),
        }
    }

    fn on_msg(&mut self, now: SimTime, src: NodeId, hops: u8, msg: &OverlayMsg) -> Vec<OvAction> {
        match msg {
            OverlayMsg::Offer {
                kind: ProbeKind::Regular,
            } => {
                if self.started
                    && self.wants_connections()
                    && self.table.open_in(src, ConnKind::Regular, now)
                {
                    vec![OvAction::Send {
                        to: src,
                        msg: OverlayMsg::Accept {
                            kind: ProbeKind::Regular,
                        },
                    }]
                } else {
                    self.table.note_rejected();
                    vec![OvAction::Send {
                        to: src,
                        msg: OverlayMsg::Reject,
                    }]
                }
            }
            OverlayMsg::Accept {
                kind: ProbeKind::Regular,
            } => {
                if self.table.on_accepted(src, now, &self.params) {
                    self.cycle.on_connected();
                    vec![OvAction::Send {
                        to: src,
                        msg: OverlayMsg::Confirm,
                    }]
                } else {
                    // Our pending side is gone (timed out, replaced): tell
                    // the peer so it cleans up immediately.
                    vec![OvAction::Send {
                        to: src,
                        msg: OverlayMsg::Reject,
                    }]
                }
            }
            OverlayMsg::Confirm => {
                if self.table.on_confirmed(src, now) {
                    self.cycle.on_connected();
                }
                Vec::new()
            }
            OverlayMsg::Reject => {
                self.table.close(src, crate::conn::CloseReason::Rejected);
                Vec::new()
            }
            OverlayMsg::Ping { token } => {
                self.table.on_ping(src, *token, now).into_iter().collect()
            }
            OverlayMsg::Pong { token } => {
                self.table.on_pong(src, *token, hops, now, &self.params);
                Vec::new()
            }
            _ => Vec::new(),
        }
    }

    fn on_unreachable(&mut self, _now: SimTime, dst: NodeId) -> Vec<OvAction> {
        self.table.on_unreachable(dst);
        Vec::new()
    }

    fn neighbors(&self) -> Vec<NodeId> {
        self.table.neighbors()
    }

    fn next_wake(&self) -> SimTime {
        let probe = if self.started && self.wants_connections() {
            self.cycle.next_attempt()
        } else {
            SimTime::MAX
        };
        probe.min(self.table.next_wake(&self.params))
    }

    fn conn_stats(&self) -> &ConnStats {
        self.table.stats()
    }

    fn role(&self) -> Role {
        Role::Servent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conn::ConnState;

    fn params() -> OverlayParams {
        OverlayParams::default()
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn probe() -> OverlayMsg {
        OverlayMsg::Probe {
            kind: ProbeKind::Regular,
        }
    }

    fn offer() -> OverlayMsg {
        OverlayMsg::Offer {
            kind: ProbeKind::Regular,
        }
    }

    fn accept() -> OverlayMsg {
        OverlayMsg::Accept {
            kind: ProbeKind::Regular,
        }
    }

    #[test]
    fn start_probes_with_initial_radius() {
        let mut a = RegularAlgo::new(NodeId(0), params());
        let out = a.start(t(0));
        assert_eq!(
            out,
            vec![OvAction::Flood {
                ttl: 2,
                msg: probe()
            }]
        );
    }

    #[test]
    fn radius_grows_across_attempts() {
        let p = params();
        let mut a = RegularAlgo::new(NodeId(0), p);
        a.start(t(0));
        let mut radii = vec![2u8];
        for _ in 0..2 {
            let now = a.next_wake();
            for act in a.tick(now) {
                if let OvAction::Flood { ttl, .. } = act {
                    radii.push(ttl);
                }
            }
        }
        assert_eq!(radii, vec![2, 4, 6]);
    }

    #[test]
    fn full_three_way_handshake_responder_side() {
        // We are B: a probe arrives from A; we offer, A accepts, we confirm.
        let p = params();
        let mut b = RegularAlgo::new(NodeId(1), p);
        b.start(t(0));
        let out = b.on_flood(t(1), NodeId(0), 2, &probe());
        assert_eq!(
            out,
            vec![OvAction::Send {
                to: NodeId(0),
                msg: offer()
            }]
        );
        assert_eq!(
            b.table().get(NodeId(0)).unwrap().state,
            ConnState::PendingOut
        );
        let out2 = b.on_msg(t(2), NodeId(0), 2, &accept());
        assert_eq!(
            out2,
            vec![OvAction::Send {
                to: NodeId(0),
                msg: OverlayMsg::Confirm
            }]
        );
        assert_eq!(b.neighbors(), vec![NodeId(0)]);
        assert!(b.table().get(NodeId(0)).unwrap().pinger, "responder pings");
    }

    #[test]
    fn full_three_way_handshake_seeker_side() {
        // We are A: we probed; an offer arrives from B; we accept; B confirms.
        let mut a = RegularAlgo::new(NodeId(0), params());
        a.start(t(0));
        let out = a.on_msg(t(1), NodeId(1), 2, &offer());
        assert_eq!(
            out,
            vec![OvAction::Send {
                to: NodeId(1),
                msg: accept()
            }]
        );
        assert!(a.neighbors().is_empty(), "not yet confirmed");
        a.on_msg(t(2), NodeId(1), 2, &OverlayMsg::Confirm);
        assert_eq!(a.neighbors(), vec![NodeId(1)]);
        assert!(
            !a.table().get(NodeId(1)).unwrap().pinger,
            "seeker is passive"
        );
    }

    #[test]
    fn seeker_rejects_offers_beyond_capacity() {
        let p = params();
        let mut a = RegularAlgo::new(NodeId(0), p);
        a.start(t(0));
        for k in 1..=p.max_conn as u32 {
            a.on_msg(t(1), NodeId(k), 2, &offer());
        }
        let out = a.on_msg(t(1), NodeId(99), 2, &offer());
        assert_eq!(
            out,
            vec![OvAction::Send {
                to: NodeId(99),
                msg: OverlayMsg::Reject
            }]
        );
        assert_eq!(a.conn_stats().rejected, 1);
    }

    #[test]
    fn responder_ignores_probe_when_full() {
        let p = params();
        let mut b = RegularAlgo::new(NodeId(1), p);
        b.start(t(0));
        for k in 2..=(p.max_conn as u32 + 1) {
            b.on_flood(t(1), NodeId(k), 2, &probe());
        }
        let out = b.on_flood(t(1), NodeId(99), 2, &probe());
        assert!(out.is_empty(), "no offer when at capacity");
    }

    #[test]
    fn reject_clears_pending_state() {
        let mut b = RegularAlgo::new(NodeId(1), params());
        b.start(t(0));
        b.on_flood(t(1), NodeId(0), 2, &probe());
        assert_eq!(b.table().len(), 1);
        b.on_msg(t(2), NodeId(0), 2, &OverlayMsg::Reject);
        assert_eq!(b.table().len(), 0);
    }

    #[test]
    fn stale_accept_earns_reject() {
        let p = params();
        let mut b = RegularAlgo::new(NodeId(1), p);
        b.start(t(0));
        b.on_flood(t(1), NodeId(0), 2, &probe());
        // Let the pending handshake expire.
        let _ = b.tick(t(1) + p.handshake_timeout);
        let out = b.on_msg(t(30), NodeId(0), 2, &accept());
        assert_eq!(
            out,
            vec![OvAction::Send {
                to: NodeId(0),
                msg: OverlayMsg::Reject
            }]
        );
    }

    #[test]
    fn connection_resets_backoff_timer() {
        let p = params();
        let mut a = RegularAlgo::new(NodeId(0), p);
        a.start(t(0));
        // Burn through a couple of sweeps to inflate the timer.
        let mut now = t(0);
        for _ in 0..8 {
            now = a.next_wake().max(now);
            let _ = a.tick(now);
        }
        assert!(a.cycle().timer() > p.timer_initial);
        // Handshake completes: timer resets.
        a.on_msg(now, NodeId(7), 2, &offer());
        a.on_msg(now, NodeId(7), 2, &OverlayMsg::Confirm);
        assert_eq!(a.cycle().timer(), p.timer_initial);
    }

    #[test]
    fn no_probe_when_capacity_reached_by_pendings() {
        let p = params();
        let mut a = RegularAlgo::new(NodeId(0), p);
        a.start(t(0));
        for k in 1..=p.max_conn as u32 {
            a.on_flood(t(0), NodeId(k), 2, &probe()); // we offered: PendingOut x3
        }
        // The cycle would be due at t(5), but the pendings hold all slots
        // until the handshake timeout (6 s) frees them.
        let out = a.tick(t(5));
        assert!(
            out.iter().all(|x| !matches!(x, OvAction::Flood { .. })),
            "pending handshakes reserve capacity"
        );
        // Once the handshakes expire, probing resumes.
        let out2 = a.tick(t(0) + p.handshake_timeout + p.timer_initial);
        assert!(out2.iter().any(|x| matches!(x, OvAction::Flood { .. })));
    }

    #[test]
    fn unreachable_peer_is_dropped() {
        let mut a = RegularAlgo::new(NodeId(0), params());
        a.start(t(0));
        a.on_msg(t(1), NodeId(1), 2, &offer());
        a.on_msg(t(2), NodeId(1), 2, &OverlayMsg::Confirm);
        assert_eq!(a.neighbors(), vec![NodeId(1)]);
        a.on_unreachable(t(3), NodeId(1));
        assert!(a.neighbors().is_empty());
    }

    #[test]
    fn pings_from_strangers_are_not_answered() {
        let mut a = RegularAlgo::new(NodeId(0), params());
        a.start(t(0));
        let out = a.on_msg(t(1), NodeId(9), 2, &OverlayMsg::Ping { token: 4 });
        assert!(
            out.is_empty(),
            "symmetric algorithms stay silent to strangers"
        );
    }
}
