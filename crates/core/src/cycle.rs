//! The paper's connection-attempt cadence.
//!
//! Figs 2–4 share a peculiar loop: the discovery radius cycles
//! `NHOPS_INITIAL, +2, ..., MAXNHOPS, 0, NHOPS_INITIAL, ...` via
//! `nhops = (nhops + 2) mod (MAXNHOPS + 2)`, the node waits `timer` between
//! attempts, and every time the cycle passes the `0` slot (a full sweep
//! failed) the timer doubles up to `MAXTIMER`. A successful connection
//! resets the timer to `TIMER_INITIAL` — "this new connection may be a
//! signal of a better network configuration".
//!
//! [`ProbeCycle`] encapsulates exactly that. The Hybrid algorithm's initial
//! state needs to *observe* the `0` slot (it is its become-master trigger),
//! so [`ProbeCycle::poll_raw`] exposes it; [`ProbeCycle::poll`] skips it for
//! Regular/Random, which only double the timer there.

use manet_des::{SimDuration, SimTime};

use crate::params::OverlayParams;

/// Attempt scheduler implementing the paper's nhops/timer cycle.
#[derive(Clone, Debug)]
pub struct ProbeCycle {
    nhops_initial: u8,
    max_nhops: u8,
    timer_initial: SimDuration,
    max_timer: SimDuration,
    /// Current discovery radius; `0` is the backoff slot.
    nhops: u8,
    /// Current wait between attempts.
    timer: SimDuration,
    /// Next instant an attempt may fire.
    next_attempt: SimTime,
}

impl ProbeCycle {
    /// A cycle starting immediately at `now` with the paper's parameters.
    pub fn new(params: &OverlayParams, now: SimTime) -> Self {
        ProbeCycle {
            nhops_initial: params.nhops_initial,
            max_nhops: params.max_nhops,
            timer_initial: params.timer_initial,
            max_timer: params.max_timer,
            nhops: params.nhops_initial,
            timer: params.timer_initial,
            next_attempt: now,
        }
    }

    /// Current backoff value (diagnostics/tests).
    pub fn timer(&self) -> SimDuration {
        self.timer
    }

    /// When the next attempt may fire.
    pub fn next_attempt(&self) -> SimTime {
        self.next_attempt
    }

    /// If an attempt is due, consume it and return its `nhops` radius,
    /// which may be `0` (the backoff slot, where the timer has just been
    /// doubled). Advances the cycle and re-arms the wait.
    pub fn poll_raw(&mut self, now: SimTime) -> Option<u8> {
        if now < self.next_attempt {
            return None;
        }
        let slot = self.nhops;
        if slot == 0 {
            self.timer = (self.timer * 2).min(self.max_timer);
            // The paper's pseudo-code does not wait on the 0 branch; the
            // next (real) attempt happens after the freshly doubled timer
            // only through its own "wait timer" step. We arm the wait here
            // so the doubled timer takes effect immediately, which matches
            // the prose ("while waiting for a longer interval the network
            // can change").
        }
        self.nhops = (self.nhops + 2) % (self.max_nhops + 2);
        self.next_attempt = now + self.timer;
        Some(slot)
    }

    /// Like [`poll_raw`](Self::poll_raw) but never hands out the `0` slot:
    /// it is consumed internally (doubling the timer) and the following
    /// radius is returned in the same call if its wait has already passed.
    pub fn poll(&mut self, now: SimTime) -> Option<u8> {
        match self.poll_raw(now) {
            Some(0) => {
                // The 0 slot armed a wait; the caller's next due attempt
                // will return a real radius.
                None
            }
            other => other,
        }
    }

    /// A connection was established: reset the backoff ("a signal of a
    /// better network configuration").
    pub fn on_connected(&mut self) {
        self.timer = self.timer_initial;
    }

    /// Restart the cycle from scratch at `now` (hybrid state transitions).
    pub fn reset(&mut self, now: SimTime) {
        self.nhops = self.nhops_initial;
        self.timer = self.timer_initial;
        self.next_attempt = now;
    }

    /// Restart the radius sweep but *keep* the current backoff, arming the
    /// next attempt one timer away. Used when a hybrid peer falls back to
    /// the initial state after a failed enrollment: an immediate re-flood
    /// would just hit the same full master again (and storms the network).
    pub fn rearm(&mut self, now: SimTime) {
        self.nhops = self.nhops_initial;
        self.next_attempt = now + self.timer;
    }

    /// One backoff step without an attempt (failed handshake, rejection).
    pub fn back_off(&mut self) {
        self.timer = (self.timer * 2).min(self.max_timer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle() -> ProbeCycle {
        ProbeCycle::new(&OverlayParams::default(), SimTime::ZERO)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn radii_cycle_2_4_6_0() {
        let mut c = cycle();
        let mut seen = Vec::new();
        for _ in 0..8 {
            let now = c.next_attempt();
            seen.push(c.poll_raw(now).unwrap());
        }
        assert_eq!(seen, vec![2, 4, 6, 0, 2, 4, 6, 0]);
    }

    #[test]
    fn not_due_returns_none() {
        let mut c = cycle();
        assert_eq!(c.poll_raw(SimTime::ZERO), Some(2));
        assert_eq!(c.poll_raw(SimTime::ZERO), None, "wait armed");
        assert_eq!(c.poll_raw(t(4)), None, "timer_initial is 5 s");
        assert_eq!(c.poll_raw(t(5)), Some(4));
    }

    #[test]
    fn timer_doubles_on_zero_slot_up_to_max() {
        let p = OverlayParams::default();
        let mut c = cycle();
        let mut timers = Vec::new();
        for _ in 0..30 {
            let now = c.next_attempt();
            let _ = c.poll_raw(now);
            timers.push(c.timer());
        }
        // After each full sweep (4 slots) the timer doubles: 5,10,20,40,80,80...
        assert_eq!(timers[2], p.timer_initial); // before first 0 slot
        assert_eq!(timers[3], p.timer_initial * 2);
        assert_eq!(timers[7], p.timer_initial * 4);
        assert_eq!(timers[11], p.timer_initial * 8);
        assert_eq!(timers[15], p.timer_initial * 16); // 80 s = MAXTIMER
        assert_eq!(timers[19], p.max_timer, "capped at MAXTIMER");
    }

    #[test]
    fn poll_hides_zero_slot() {
        let mut c = cycle();
        let mut radii = Vec::new();
        let mut polls = 0;
        let mut now = SimTime::ZERO;
        while radii.len() < 6 {
            now = c.next_attempt().max(now);
            if let Some(r) = c.poll(now) {
                radii.push(r);
            }
            polls += 1;
            assert!(polls < 100);
        }
        assert_eq!(radii, vec![2, 4, 6, 2, 4, 6]);
    }

    #[test]
    fn connection_resets_backoff() {
        let p = OverlayParams::default();
        let mut c = cycle();
        for _ in 0..8 {
            let now = c.next_attempt();
            let _ = c.poll_raw(now);
        }
        assert!(c.timer() > p.timer_initial);
        c.on_connected();
        assert_eq!(c.timer(), p.timer_initial);
    }

    #[test]
    fn reset_restarts_everything() {
        let p = OverlayParams::default();
        let mut c = cycle();
        for _ in 0..5 {
            let now = c.next_attempt();
            let _ = c.poll_raw(now);
        }
        c.reset(t(100));
        assert_eq!(c.timer(), p.timer_initial);
        assert_eq!(c.next_attempt(), t(100));
        assert_eq!(c.poll_raw(t(100)), Some(p.nhops_initial));
    }
}
