//! Adversarial node roles — the misbehaviour contract.
//!
//! A deployed overlay must tolerate nodes that do not follow protocol. This
//! module names the misbehaviours the simulator and test harnesses model;
//! the *mechanics* live in the layer each role subverts (the simulator's
//! routing/overlay stacks, or [`crate::testkit::MiniNet`] for conformance
//! tests). Keeping the contract here lets scenarios, conformance tests and
//! the scenario DSL all speak the same vocabulary.
//!
//! All roles are deterministic: grey-holes drop every n-th forwarded frame
//! by counter, not by coin flip, so an adversarial run is as reproducible
//! as an honest one and never perturbs the RNG streams of honest nodes.

use manet_des::SimDuration;

/// A node's adversarial behaviour. Honest nodes carry no role at all.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdversaryRole {
    /// Participates in routing but silently discards every frame it would
    /// forward on behalf of others (routed data and overlay floods). Its
    /// own traffic still flows, so it keeps attracting routes.
    BlackHole,
    /// A selective black-hole: drops every `drop_nth`-th forwarded frame
    /// (counter-based, deterministic). `drop_nth = 2` drops half the
    /// traffic, `drop_nth = 4` a quarter. Must be at least 2 — a grey-hole
    /// that drops everything is a [`AdversaryRole::BlackHole`].
    GreyHole {
        /// Drop one frame out of every `drop_nth` forwarded.
        drop_nth: u32,
    },
    /// Rebroadcasts every route-request it forwards `factor` times instead
    /// of once, amplifying discovery floods into a bandwidth/energy attack
    /// on its neighbourhood.
    RreqAmplifier {
        /// Total copies sent per RREQ (2..=8).
        factor: u8,
    },
    /// A joined member that injects a synthetic content query to each of
    /// its overlay neighbours every `period`, regardless of what it owns
    /// or wants — a query-flooding denial of service at the p2p layer.
    QueryFlooder {
        /// Interval between injection bursts.
        period: SimDuration,
    },
    /// A free-rider: issues queries and fetches files like any member but
    /// never serves — incoming queries and fetch requests are consumed
    /// without response.
    Selfish,
}

impl AdversaryRole {
    /// Stable lower-case name, as used by the scenario DSL.
    pub fn name(&self) -> &'static str {
        match self {
            AdversaryRole::BlackHole => "black-hole",
            AdversaryRole::GreyHole { .. } => "grey-hole",
            AdversaryRole::RreqAmplifier { .. } => "rreq-amplifier",
            AdversaryRole::QueryFlooder { .. } => "query-flooder",
            AdversaryRole::Selfish => "selfish",
        }
    }

    /// Whether this role only makes sense on a p2p *member* (it acts at the
    /// overlay/content layer), as opposed to any relay node.
    pub fn requires_membership(&self) -> bool {
        matches!(
            self,
            AdversaryRole::QueryFlooder { .. } | AdversaryRole::Selfish
        )
    }
}

impl std::fmt::Display for AdversaryRole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(AdversaryRole::BlackHole.name(), "black-hole");
        assert_eq!(AdversaryRole::GreyHole { drop_nth: 2 }.name(), "grey-hole");
        assert_eq!(
            AdversaryRole::RreqAmplifier { factor: 3 }.to_string(),
            "rreq-amplifier"
        );
        assert_eq!(
            AdversaryRole::QueryFlooder {
                period: SimDuration::from_secs(5)
            }
            .name(),
            "query-flooder"
        );
        assert_eq!(AdversaryRole::Selfish.name(), "selfish");
    }

    #[test]
    fn membership_requirement_tracks_layer() {
        assert!(!AdversaryRole::BlackHole.requires_membership());
        assert!(!AdversaryRole::GreyHole { drop_nth: 2 }.requires_membership());
        assert!(!AdversaryRole::RreqAmplifier { factor: 2 }.requires_membership());
        assert!(AdversaryRole::QueryFlooder {
            period: SimDuration::from_secs(1)
        }
        .requires_membership());
        assert!(AdversaryRole::Selfish.requires_membership());
    }
}
