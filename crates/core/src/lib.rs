//! # p2p-core — the IPDPS'03 (re)configuration algorithms
//!
//! The paper's primary contribution: four algorithms that build and maintain
//! a peer-to-peer overlay on top of a mobile ad-hoc network, implemented
//! from the pseudo-code of Figs 1–4.
//!
//! | Algorithm | Figure | Character |
//! |---|---|---|
//! | [`BasicAlgo`] | Fig 1 | Fixed-radius flooding, fixed retry timer, asymmetric references, both sides ping — the Gnutella-like baseline. |
//! | [`RegularAlgo`] | Fig 2 | Progressive discovery radius, `MAXDIST` pruning, symmetric three-way handshake with a single pinger, exponential backoff. |
//! | [`RandomAlgo`] | Fig 3 | Regular plus one long-range "small-world" connection to the farthest responder within a random radius. |
//! | [`HybridAlgo`] | Fig 4 | Master/slave clustering by capability qualifier for heterogeneous networks. |
//!
//! All four implement [`Reconfigurator`]: pure state machines taking
//! `(now, input)` and returning [`OvAction`]s (hop-limited floods and routed
//! unicasts) for the node's network stack to execute. "Connections" are
//! *references* in the paper's sense — see [`conn`] for the table and the
//! ping/pong maintenance engine shared by all algorithms.
//!
//! ```
//! use manet_des::{NodeId, SimTime};
//! use p2p_core::{Reconfigurator, RegularAlgo, OverlayParams};
//!
//! let mut node = RegularAlgo::new(NodeId(0), OverlayParams::default());
//! let actions = node.start(SimTime::ZERO);
//! assert!(!actions.is_empty()); // the first discovery probe
//! ```

pub mod adversary;
pub mod api;
pub mod basic;
pub mod conn;
pub mod cycle;
pub mod hybrid;
pub mod msg;
pub mod params;
pub mod random;
pub mod regular;
pub mod testkit;
pub mod topology;
pub mod wire;

pub use adversary::AdversaryRole;
pub use api::{Reconfigurator, Role};
pub use basic::BasicAlgo;
pub use conn::{CloseReason, Conn, ConnKind, ConnState, ConnStats, ConnTable};
pub use cycle::ProbeCycle;
pub use hybrid::HybridAlgo;
pub use msg::{MsgCategory, OvAction, OverlayMsg, ProbeKind};
pub use params::OverlayParams;
pub use random::RandomAlgo;
pub use regular::RegularAlgo;
pub use wire::{decode_overlay, encode_overlay};

/// A boxed algorithm, for worlds mixing node behaviours.
pub type BoxedAlgo = Box<dyn Reconfigurator + Send>;

/// Which of the paper's four algorithms to run — scenario-level selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AlgoKind {
    /// Fig 1 baseline.
    Basic,
    /// Fig 2.
    Regular,
    /// Fig 3.
    Random,
    /// Fig 4.
    Hybrid,
}

impl AlgoKind {
    /// All four, in the paper's presentation order.
    pub const ALL: [AlgoKind; 4] = [
        AlgoKind::Basic,
        AlgoKind::Regular,
        AlgoKind::Random,
        AlgoKind::Hybrid,
    ];

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            AlgoKind::Basic => "Basic",
            AlgoKind::Regular => "Regular",
            AlgoKind::Random => "Random",
            AlgoKind::Hybrid => "Hybrid",
        }
    }
}

impl std::fmt::Display for AlgoKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Build a node's algorithm instance.
///
/// `qualifier` only matters for [`AlgoKind::Hybrid`]; `rng` only for
/// [`AlgoKind::Random`].
pub fn build_algo(
    kind: AlgoKind,
    id: manet_des::NodeId,
    params: OverlayParams,
    qualifier: u32,
    rng: manet_des::Rng,
) -> BoxedAlgo {
    match kind {
        AlgoKind::Basic => Box::new(BasicAlgo::new(id, params)),
        AlgoKind::Regular => Box::new(RegularAlgo::new(id, params)),
        AlgoKind::Random => Box::new(RandomAlgo::new(id, params, rng)),
        AlgoKind::Hybrid => Box::new(HybridAlgo::new(id, params, qualifier)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_des::{NodeId, Rng, SimTime};

    #[test]
    fn build_algo_covers_all_kinds() {
        for kind in AlgoKind::ALL {
            let mut algo = build_algo(kind, NodeId(1), OverlayParams::default(), 42, Rng::new(7));
            let out = algo.start(SimTime::ZERO);
            assert!(
                !out.is_empty(),
                "{kind} should emit discovery traffic on start"
            );
            assert!(algo.neighbors().is_empty());
        }
    }

    #[test]
    fn algo_names_match_paper() {
        assert_eq!(AlgoKind::Basic.name(), "Basic");
        assert_eq!(AlgoKind::Regular.to_string(), "Regular");
        assert_eq!(AlgoKind::Random.name(), "Random");
        assert_eq!(AlgoKind::Hybrid.name(), "Hybrid");
    }

    #[test]
    fn roles_start_correctly() {
        let basic = BasicAlgo::new(NodeId(0), OverlayParams::default());
        assert_eq!(basic.role(), Role::Servent);
        let hybrid = HybridAlgo::new(NodeId(0), OverlayParams::default(), 1);
        assert_eq!(hybrid.role(), Role::Initial);
    }
}
