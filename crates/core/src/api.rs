//! The interface every (re)configuration algorithm implements.

use manet_des::{NodeId, SimTime};

use crate::conn::ConnStats;
use crate::msg::{OvAction, OverlayMsg};

/// The role a node currently plays in the overlay.
///
/// Decentralized algorithms have a single role ([`Role::Servent`]); the
/// Hybrid algorithm distinguishes the paper's four states.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Role {
    /// Homogeneous peer (Basic/Regular/Random).
    Servent,
    /// Hybrid: still looking for a master or slaves.
    Initial,
    /// Hybrid: slave handshake in flight.
    Reserved,
    /// Hybrid: cluster head.
    Master,
    /// Hybrid: attached to a master.
    Slave,
}

/// A (re)configuration algorithm: an event-driven state machine building
/// and maintaining one node's overlay references.
///
/// The node's network stack calls these entry points and executes the
/// returned [`OvAction`]s (hop-limited floods and routed unicasts). All
/// methods take `now` explicitly — implementations own no clock.
pub trait Reconfigurator {
    /// The node joined the p2p network; emit the first discovery traffic.
    fn start(&mut self, now: SimTime) -> Vec<OvAction>;

    /// Timer tick. Call at (or after) [`next_wake`](Self::next_wake).
    fn tick(&mut self, now: SimTime) -> Vec<OvAction>;

    /// A flooded overlay message arrived (discovery probes, captures).
    /// `hops` is the ad-hoc distance it travelled from `origin`.
    fn on_flood(
        &mut self,
        now: SimTime,
        origin: NodeId,
        hops: u8,
        msg: &OverlayMsg,
    ) -> Vec<OvAction>;

    /// A routed overlay message arrived from `src`, `hops` ad-hoc hops away.
    fn on_msg(&mut self, now: SimTime, src: NodeId, hops: u8, msg: &OverlayMsg) -> Vec<OvAction>;

    /// The routing layer gave up reaching `dst`.
    fn on_unreachable(&mut self, now: SimTime, dst: NodeId) -> Vec<OvAction>;

    /// Established overlay neighbors — the reference list the query layer
    /// fans out to. Sorted by node id.
    fn neighbors(&self) -> Vec<NodeId>;

    /// Earliest instant [`tick`](Self::tick) needs to run again.
    fn next_wake(&self) -> SimTime;

    /// Connection lifecycle counters.
    fn conn_stats(&self) -> &ConnStats;

    /// The node's current role.
    fn role(&self) -> Role {
        Role::Servent
    }
}
