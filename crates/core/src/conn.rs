//! The connection (reference) table and its maintenance engine.
//!
//! "Connections" in the paper are *references*: knowledge of a reachable
//! peer's address, checked periodically with ping/pong. This module owns
//! that state for one node and implements the maintenance pseudo-code of
//! Figs 1 and 2:
//!
//! * the **pinger** side sends a ping, waits for the pong, closes on
//!   timeout, and closes when the pong reveals the peer is too far
//!   (`MAXDIST`, or `2 * MAXDIST` for random connections);
//! * the **passive** side answers pings with pongs and closes when pings
//!   stop arriving.
//!
//! Symmetric connections (Regular/Random/Hybrid) have exactly one pinger —
//! the paper's "number of pings and pongs was cut half" improvement. Basic
//! connections are asymmetric: each reference owner pings independently.

use std::collections::BTreeMap;

use manet_des::{NodeId, SimDuration, SimTime};

use crate::msg::{OvAction, OverlayMsg};
use crate::params::OverlayParams;

/// What role a connection plays (and which distance limit applies).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnKind {
    /// Asymmetric Basic-algorithm reference (no distance limit).
    Basic,
    /// Symmetric near connection (Regular algorithm, and the Random
    /// algorithm's first `MAXNCONN - 1`).
    Regular,
    /// The Random algorithm's long-range connection (limit `2 * MAXDIST`).
    Random,
    /// Hybrid: master ↔ master link.
    Master,
    /// Hybrid: this node's link to its master (slave side) or to one of its
    /// slaves (master side).
    Slave,
}

/// Handshake progress.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnState {
    /// We sent the opening leg (Offer / SlaveRequest) and await acceptance.
    PendingOut,
    /// We accepted (sent Accept / SlaveAccept) and await the confirmation.
    PendingIn,
    /// Live connection.
    Established,
}

/// Why a connection was closed — drives algorithm reactions and metrics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CloseReason {
    /// The pong did not arrive in time.
    PongTimeout,
    /// The pong arrived but the peer is beyond the distance limit.
    TooFar,
    /// Passive side: pings stopped arriving.
    PingSilence,
    /// The handshake never completed.
    HandshakeTimeout,
    /// The routing layer declared the peer unreachable.
    Unreachable,
    /// The peer rejected or explicitly ended the connection.
    Rejected,
    /// The algorithm reset its own state (e.g. a hybrid master reverting
    /// to initial).
    Reset,
}

/// One connection's state.
#[derive(Clone, Debug)]
pub struct Conn {
    /// The role of this connection.
    pub kind: ConnKind,
    /// Handshake progress.
    pub state: ConnState,
    /// True if this side sends the pings.
    pub pinger: bool,
    /// When the connection entered its current state.
    pub since: SimTime,
    /// Pinger side: when the next ping is due.
    next_ping_at: SimTime,
    /// Pinger side: outstanding ping `(token, deadline)`.
    awaiting_pong: Option<(u32, SimTime)>,
    /// Passive side: last time we heard a ping (or established).
    last_heard: SimTime,
    /// Most recent measured distance in ad-hoc hops (from pong delivery).
    pub last_distance: Option<u8>,
}

/// Counters for one node's connection lifecycle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// Connections that reached the established state.
    pub established: u64,
    /// Closes by reason, indexed with [`ConnStats::reason_index`].
    pub closed: [u64; 7],
    /// Handshake legs we refused (capacity, wrong state...).
    pub rejected: u64,
}

impl ConnStats {
    /// Index into [`ConnStats::closed`] for a reason.
    pub fn reason_index(reason: CloseReason) -> usize {
        match reason {
            CloseReason::PongTimeout => 0,
            CloseReason::TooFar => 1,
            CloseReason::PingSilence => 2,
            CloseReason::HandshakeTimeout => 3,
            CloseReason::Unreachable => 4,
            CloseReason::Rejected => 5,
            CloseReason::Reset => 6,
        }
    }

    /// Total closes, any reason.
    pub fn closed_total(&self) -> u64 {
        self.closed.iter().sum()
    }
}

/// Outcome of a maintenance tick.
#[derive(Clone, Debug, Default)]
pub struct TickOutcome {
    /// Messages to transmit.
    pub actions: Vec<OvAction>,
    /// Connections that were closed, with their kind and reason.
    pub closed: Vec<(NodeId, ConnKind, CloseReason)>,
}

/// The per-node table of overlay references.
#[derive(Clone, Debug)]
pub struct ConnTable {
    conns: BTreeMap<NodeId, Conn>,
    next_token: u32,
    stats: ConnStats,
}

impl Default for ConnTable {
    fn default() -> Self {
        Self::new()
    }
}

impl ConnTable {
    /// An empty table.
    pub fn new() -> Self {
        ConnTable {
            conns: BTreeMap::new(),
            next_token: 0,
            stats: ConnStats::default(),
        }
    }

    /// Lifecycle counters.
    pub fn stats(&self) -> &ConnStats {
        &self.stats
    }

    /// All slots in use (pending handshakes reserve capacity too).
    pub fn len(&self) -> usize {
        self.conns.len()
    }

    /// True when no connection (in any state) exists.
    pub fn is_empty(&self) -> bool {
        self.conns.is_empty()
    }

    /// Number of established connections.
    pub fn established_count(&self) -> usize {
        self.conns
            .values()
            .filter(|c| c.state == ConnState::Established)
            .count()
    }

    /// Slots in use with the given kind.
    pub fn count_kind(&self, kind: ConnKind) -> usize {
        self.conns.values().filter(|c| c.kind == kind).count()
    }

    /// The connection to `peer`, if any.
    pub fn get(&self, peer: NodeId) -> Option<&Conn> {
        self.conns.get(&peer)
    }

    /// Established peers, ascending id (deterministic iteration).
    pub fn neighbors(&self) -> Vec<NodeId> {
        self.conns
            .iter()
            .filter(|(_, c)| c.state == ConnState::Established)
            .map(|(id, _)| *id)
            .collect()
    }

    /// Established peers of a given kind.
    pub fn neighbors_of_kind(&self, kind: ConnKind) -> Vec<NodeId> {
        self.conns
            .iter()
            .filter(|(_, c)| c.state == ConnState::Established && c.kind == kind)
            .map(|(id, _)| *id)
            .collect()
    }

    // ------------------------------------------------------------------
    // Handshake transitions
    // ------------------------------------------------------------------

    /// Record that we sent the opening leg to `peer` (we will be the
    /// pinger). No-op returning false if a connection already exists.
    pub fn open_out(&mut self, peer: NodeId, kind: ConnKind, now: SimTime) -> bool {
        if self.conns.contains_key(&peer) {
            return false;
        }
        self.conns.insert(
            peer,
            Conn {
                kind,
                state: ConnState::PendingOut,
                pinger: true,
                since: now,
                next_ping_at: SimTime::MAX,
                awaiting_pong: None,
                last_heard: now,
                last_distance: None,
            },
        );
        true
    }

    /// Record that we accepted `peer`'s opening leg (we will be passive).
    pub fn open_in(&mut self, peer: NodeId, kind: ConnKind, now: SimTime) -> bool {
        if self.conns.contains_key(&peer) {
            return false;
        }
        self.conns.insert(
            peer,
            Conn {
                kind,
                state: ConnState::PendingIn,
                pinger: false,
                since: now,
                next_ping_at: SimTime::MAX,
                awaiting_pong: None,
                last_heard: now,
                last_distance: None,
            },
        );
        true
    }

    /// Basic algorithm: adopt a reference immediately (no handshake); we
    /// ping it. Returns false if the peer is already present.
    pub fn adopt_basic(&mut self, peer: NodeId, now: SimTime, params: &OverlayParams) -> bool {
        if self.conns.contains_key(&peer) {
            return false;
        }
        self.conns.insert(
            peer,
            Conn {
                kind: ConnKind::Basic,
                state: ConnState::Established,
                pinger: true,
                since: now,
                next_ping_at: now + params.ping_interval,
                awaiting_pong: None,
                last_heard: now,
                last_distance: None,
            },
        );
        self.stats.established += 1;
        true
    }

    /// Our opening leg was accepted: PendingOut → Established; start pinging.
    pub fn on_accepted(&mut self, peer: NodeId, now: SimTime, params: &OverlayParams) -> bool {
        match self.conns.get_mut(&peer) {
            Some(c) if c.state == ConnState::PendingOut => {
                c.state = ConnState::Established;
                c.since = now;
                c.next_ping_at = now + params.ping_interval;
                self.stats.established += 1;
                true
            }
            _ => false,
        }
    }

    /// The confirmation arrived: PendingIn → Established (passive side).
    pub fn on_confirmed(&mut self, peer: NodeId, now: SimTime) -> bool {
        match self.conns.get_mut(&peer) {
            Some(c) if c.state == ConnState::PendingIn => {
                c.state = ConnState::Established;
                c.since = now;
                c.last_heard = now;
                self.stats.established += 1;
                true
            }
            _ => false,
        }
    }

    /// Note a rejection we issued (bookkeeping only).
    pub fn note_rejected(&mut self) {
        self.stats.rejected += 1;
    }

    /// Close the connection to `peer`, if any, recording the reason.
    pub fn close(&mut self, peer: NodeId, reason: CloseReason) -> Option<Conn> {
        let conn = self.conns.remove(&peer)?;
        self.stats.closed[ConnStats::reason_index(reason)] += 1;
        Some(conn)
    }

    /// Drop every connection (hybrid state resets), recording `reason`.
    pub fn close_all(&mut self, reason: CloseReason) -> Vec<(NodeId, ConnKind)> {
        let out: Vec<(NodeId, ConnKind)> = self.conns.iter().map(|(id, c)| (*id, c.kind)).collect();
        self.stats.closed[ConnStats::reason_index(reason)] += out.len() as u64;
        self.conns.clear();
        out
    }

    // ------------------------------------------------------------------
    // Keep-alive protocol
    // ------------------------------------------------------------------

    /// A ping arrived from `peer`. Answers with a pong when a connection to
    /// the pinger exists (and refreshes its liveness clock); returns `None`
    /// for strangers, so a peer that dropped the connection goes silent and
    /// the pinger's pong-timeout cleans up its side too. The Basic
    /// algorithm, whose references are one-sided by design, ponges
    /// strangers itself (see [`stranger_pong`]).
    pub fn on_ping(&mut self, peer: NodeId, token: u32, now: SimTime) -> Option<OvAction> {
        let c = self.conns.get_mut(&peer)?;
        c.last_heard = now;
        Some(OvAction::Send {
            to: peer,
            msg: OverlayMsg::Pong { token },
        })
    }

    /// A pong arrived from `peer` having travelled `hops` ad-hoc hops.
    ///
    /// Applies the paper's distance rule: keep the connection only while the
    /// peer is nearer than the kind's limit. Returns the close record if the
    /// connection was dropped.
    pub fn on_pong(
        &mut self,
        peer: NodeId,
        token: u32,
        hops: u8,
        now: SimTime,
        params: &OverlayParams,
    ) -> Option<(NodeId, ConnKind, CloseReason)> {
        let c = self.conns.get_mut(&peer)?;
        match c.awaiting_pong {
            Some((expected, _)) if expected == token => {
                c.awaiting_pong = None;
                c.last_distance = Some(hops);
                c.last_heard = now;
                if let Some(limit) = params.dist_limit(c.kind) {
                    if hops >= limit {
                        let kind = c.kind;
                        self.close(peer, CloseReason::TooFar);
                        return Some((peer, kind, CloseReason::TooFar));
                    }
                }
                c.next_ping_at = now + params.ping_interval;
                None
            }
            _ => None, // stale or unsolicited pong
        }
    }

    /// Routing declared `peer` unreachable: close if we track it.
    pub fn on_unreachable(&mut self, peer: NodeId) -> Option<(NodeId, ConnKind, CloseReason)> {
        let kind = self.conns.get(&peer)?.kind;
        self.close(peer, CloseReason::Unreachable);
        Some((peer, kind, CloseReason::Unreachable))
    }

    /// Run all per-connection timers: due pings, pong timeouts, passive
    /// ping-silence, and handshake expiry.
    pub fn tick(&mut self, now: SimTime, params: &OverlayParams) -> TickOutcome {
        let mut out = TickOutcome::default();
        let passive_grace = params.ping_interval + params.pong_timeout * 2;
        let mut to_close: Vec<(NodeId, ConnKind, CloseReason)> = Vec::new();
        let mut next_token = self.next_token;

        for (&peer, c) in self.conns.iter_mut() {
            match c.state {
                ConnState::PendingOut | ConnState::PendingIn => {
                    if now >= c.since + params.handshake_timeout {
                        to_close.push((peer, c.kind, CloseReason::HandshakeTimeout));
                    }
                }
                ConnState::Established => {
                    if c.pinger {
                        if let Some((_, deadline)) = c.awaiting_pong {
                            if now >= deadline {
                                to_close.push((peer, c.kind, CloseReason::PongTimeout));
                                continue;
                            }
                        } else if now >= c.next_ping_at {
                            let token = next_token;
                            next_token = next_token.wrapping_add(1);
                            c.awaiting_pong = Some((token, now + params.pong_timeout));
                            out.actions.push(OvAction::Send {
                                to: peer,
                                msg: OverlayMsg::Ping { token },
                            });
                        }
                    } else if now >= c.last_heard + passive_grace {
                        to_close.push((peer, c.kind, CloseReason::PingSilence));
                    }
                }
            }
        }
        self.next_token = next_token;
        for (peer, kind, reason) in to_close {
            self.close(peer, reason);
            out.closed.push((peer, kind, reason));
        }
        out
    }

    /// The earliest instant any timer in this table fires.
    pub fn next_wake(&self, params: &OverlayParams) -> SimTime {
        let passive_grace = params.ping_interval + params.pong_timeout * 2;
        let mut wake = SimTime::MAX;
        for c in self.conns.values() {
            let t = match c.state {
                ConnState::PendingOut | ConnState::PendingIn => c.since + params.handshake_timeout,
                ConnState::Established => {
                    if c.pinger {
                        match c.awaiting_pong {
                            Some((_, deadline)) => deadline,
                            None => c.next_ping_at,
                        }
                    } else {
                        c.last_heard + passive_grace
                    }
                }
            };
            wake = wake.min(t);
        }
        wake
    }
}

/// The unconditional pong the Basic algorithm sends to any pinger, matching
/// its stateless responder side ("whenever a node receives a ping it answers
/// with a pong", Fig 1).
pub fn stranger_pong(peer: NodeId, token: u32) -> OvAction {
    OvAction::Send {
        to: peer,
        msg: OverlayMsg::Pong { token },
    }
}

/// Keep `SimDuration` available for the grace computation docs.
#[allow(dead_code)]
fn _duration_ops(d: SimDuration) -> SimDuration {
    d * 2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> OverlayParams {
        OverlayParams::default()
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn establish_symmetric(table: &mut ConnTable, peer: NodeId, kind: ConnKind, now: SimTime) {
        assert!(table.open_out(peer, kind, now));
        assert!(table.on_accepted(peer, now, &params()));
    }

    #[test]
    fn handshake_out_path() {
        let p = params();
        let mut tb = ConnTable::new();
        assert!(tb.open_out(NodeId(2), ConnKind::Regular, t(0)));
        assert!(!tb.open_out(NodeId(2), ConnKind::Regular, t(0)), "no dup");
        assert_eq!(tb.established_count(), 0);
        assert_eq!(tb.len(), 1, "pending reserves a slot");
        assert!(tb.on_accepted(NodeId(2), t(1), &p));
        assert_eq!(tb.established_count(), 1);
        assert_eq!(tb.neighbors(), vec![NodeId(2)]);
        assert!(tb.get(NodeId(2)).unwrap().pinger);
    }

    #[test]
    fn handshake_in_path() {
        let mut tb = ConnTable::new();
        assert!(tb.open_in(NodeId(3), ConnKind::Regular, t(0)));
        assert!(tb.on_confirmed(NodeId(3), t(1)));
        assert!(!tb.get(NodeId(3)).unwrap().pinger, "acceptor is passive");
        assert!(!tb.on_confirmed(NodeId(3), t(1)), "double confirm rejected");
    }

    #[test]
    fn handshake_timeout_cleans_pending() {
        let p = params();
        let mut tb = ConnTable::new();
        tb.open_out(NodeId(2), ConnKind::Regular, t(0));
        let out = tb.tick(t(0) + p.handshake_timeout, &p);
        assert_eq!(
            out.closed,
            vec![(NodeId(2), ConnKind::Regular, CloseReason::HandshakeTimeout)]
        );
        assert!(tb.is_empty());
    }

    #[test]
    fn pinger_sends_ping_then_times_out() {
        let p = params();
        let mut tb = ConnTable::new();
        establish_symmetric(&mut tb, NodeId(2), ConnKind::Regular, t(0));
        // Ping due after ping_interval.
        let out = tb.tick(t(0) + p.ping_interval, &p);
        assert_eq!(out.actions.len(), 1);
        assert!(matches!(
            out.actions[0],
            OvAction::Send {
                to: NodeId(2),
                msg: OverlayMsg::Ping { .. }
            }
        ));
        // No pong: closes at the pong deadline.
        let out2 = tb.tick(t(0) + p.ping_interval + p.pong_timeout, &p);
        assert_eq!(
            out2.closed,
            vec![(NodeId(2), ConnKind::Regular, CloseReason::PongTimeout)]
        );
    }

    #[test]
    fn pong_within_distance_keeps_connection() {
        let p = params();
        let mut tb = ConnTable::new();
        establish_symmetric(&mut tb, NodeId(2), ConnKind::Regular, t(0));
        let out = tb.tick(t(0) + p.ping_interval, &p);
        let token = match out.actions[0] {
            OvAction::Send {
                msg: OverlayMsg::Ping { token },
                ..
            } => token,
            ref other => panic!("expected ping, got {other:?}"),
        };
        let closed = tb.on_pong(NodeId(2), token, 3, t(11), &p);
        assert!(closed.is_none());
        assert_eq!(tb.get(NodeId(2)).unwrap().last_distance, Some(3));
        assert_eq!(tb.established_count(), 1);
    }

    #[test]
    fn pong_beyond_maxdist_closes_regular() {
        let p = params();
        let mut tb = ConnTable::new();
        establish_symmetric(&mut tb, NodeId(2), ConnKind::Regular, t(0));
        let out = tb.tick(t(0) + p.ping_interval, &p);
        let token = match out.actions[0] {
            OvAction::Send {
                msg: OverlayMsg::Ping { token },
                ..
            } => token,
            ref other => panic!("expected ping, got {other:?}"),
        };
        let closed = tb.on_pong(NodeId(2), token, p.max_dist, t(11), &p);
        assert_eq!(
            closed,
            Some((NodeId(2), ConnKind::Regular, CloseReason::TooFar))
        );
        assert!(tb.is_empty());
    }

    #[test]
    fn random_connection_tolerates_twice_the_distance() {
        let p = params();
        let mut tb = ConnTable::new();
        establish_symmetric(&mut tb, NodeId(2), ConnKind::Random, t(0));
        let out = tb.tick(t(0) + p.ping_interval, &p);
        let token = match out.actions[0] {
            OvAction::Send {
                msg: OverlayMsg::Ping { token },
                ..
            } => token,
            ref other => panic!("expected ping, got {other:?}"),
        };
        // max_dist hops is fine for a random connection...
        assert!(tb
            .on_pong(NodeId(2), token, p.max_dist, t(11), &p)
            .is_none());
        // ...but 2*max_dist is not.
        let out2 = tb.tick(t(11) + p.ping_interval, &p);
        let token2 = match out2.actions[0] {
            OvAction::Send {
                msg: OverlayMsg::Ping { token },
                ..
            } => token,
            ref other => panic!("expected ping, got {other:?}"),
        };
        let closed = tb.on_pong(NodeId(2), token2, p.max_dist * 2, t(22), &p);
        assert_eq!(
            closed,
            Some((NodeId(2), ConnKind::Random, CloseReason::TooFar))
        );
    }

    #[test]
    fn basic_connection_ignores_distance() {
        let p = params();
        let mut tb = ConnTable::new();
        assert!(tb.adopt_basic(NodeId(2), t(0), &p));
        let out = tb.tick(t(0) + p.ping_interval, &p);
        let token = match out.actions[0] {
            OvAction::Send {
                msg: OverlayMsg::Ping { token },
                ..
            } => token,
            ref other => panic!("expected ping, got {other:?}"),
        };
        assert!(tb.on_pong(NodeId(2), token, 200, t(11), &p).is_none());
        assert_eq!(tb.established_count(), 1);
    }

    #[test]
    fn stale_pong_token_is_ignored() {
        let p = params();
        let mut tb = ConnTable::new();
        establish_symmetric(&mut tb, NodeId(2), ConnKind::Regular, t(0));
        let out = tb.tick(t(0) + p.ping_interval, &p);
        let token = match out.actions[0] {
            OvAction::Send {
                msg: OverlayMsg::Ping { token },
                ..
            } => token,
            ref other => panic!("expected ping, got {other:?}"),
        };
        assert!(tb
            .on_pong(NodeId(2), token.wrapping_add(7), 3, t(11), &p)
            .is_none());
        // The real pong still works.
        assert!(tb.on_pong(NodeId(2), token, 3, t(12), &p).is_none());
        assert_eq!(tb.established_count(), 1);
    }

    #[test]
    fn passive_side_closes_on_ping_silence() {
        let p = params();
        let mut tb = ConnTable::new();
        tb.open_in(NodeId(4), ConnKind::Regular, t(0));
        tb.on_confirmed(NodeId(4), t(0));
        // A ping refreshes the clock.
        let pong = tb
            .on_ping(NodeId(4), 1, t(5))
            .expect("known peer gets pong");
        assert!(matches!(
            pong,
            OvAction::Send {
                msg: OverlayMsg::Pong { token: 1 },
                ..
            }
        ));
        // Silence for the grace period closes it.
        let grace = p.ping_interval + p.pong_timeout * 2;
        let out = tb.tick(t(5) + grace, &p);
        assert_eq!(
            out.closed,
            vec![(NodeId(4), ConnKind::Regular, CloseReason::PingSilence)]
        );
    }

    #[test]
    fn strangers_get_no_pong_from_the_table() {
        let mut tb = ConnTable::new();
        assert!(tb.on_ping(NodeId(9), 77, t(1)).is_none());
        // The Basic algorithm answers them explicitly instead.
        assert_eq!(
            stranger_pong(NodeId(9), 77),
            OvAction::Send {
                to: NodeId(9),
                msg: OverlayMsg::Pong { token: 77 }
            }
        );
    }

    #[test]
    fn unreachable_closes_and_reports() {
        let p = params();
        let mut tb = ConnTable::new();
        establish_symmetric(&mut tb, NodeId(2), ConnKind::Random, t(0));
        assert_eq!(
            tb.on_unreachable(NodeId(2)),
            Some((NodeId(2), ConnKind::Random, CloseReason::Unreachable))
        );
        assert!(tb.on_unreachable(NodeId(2)).is_none());
        let _ = p;
    }

    #[test]
    fn close_all_reports_everything() {
        let p = params();
        let mut tb = ConnTable::new();
        establish_symmetric(&mut tb, NodeId(1), ConnKind::Master, t(0));
        tb.open_out(NodeId(2), ConnKind::Slave, t(0));
        let closed = tb.close_all(CloseReason::Reset);
        assert_eq!(closed.len(), 2);
        assert!(tb.is_empty());
        assert_eq!(
            tb.stats().closed[ConnStats::reason_index(CloseReason::Reset)],
            2
        );
        let _ = p;
    }

    #[test]
    fn next_wake_is_earliest_deadline() {
        let p = params();
        let mut tb = ConnTable::new();
        assert_eq!(tb.next_wake(&p), SimTime::MAX);
        establish_symmetric(&mut tb, NodeId(2), ConnKind::Regular, t(0));
        assert_eq!(tb.next_wake(&p), t(0) + p.ping_interval);
        tb.open_out(NodeId(3), ConnKind::Regular, t(1));
        assert_eq!(
            tb.next_wake(&p),
            (t(1) + p.handshake_timeout).min(t(0) + p.ping_interval)
        );
    }

    #[test]
    fn neighbors_of_kind_filters() {
        let p = params();
        let mut tb = ConnTable::new();
        establish_symmetric(&mut tb, NodeId(1), ConnKind::Regular, t(0));
        establish_symmetric(&mut tb, NodeId(2), ConnKind::Random, t(0));
        tb.adopt_basic(NodeId(3), t(0), &p);
        assert_eq!(tb.neighbors_of_kind(ConnKind::Regular), vec![NodeId(1)]);
        assert_eq!(tb.neighbors_of_kind(ConnKind::Random), vec![NodeId(2)]);
        assert_eq!(tb.neighbors().len(), 3);
    }

    #[test]
    fn stats_track_lifecycle() {
        let p = params();
        let mut tb = ConnTable::new();
        establish_symmetric(&mut tb, NodeId(1), ConnKind::Regular, t(0));
        tb.close(NodeId(1), CloseReason::TooFar);
        tb.note_rejected();
        assert_eq!(tb.stats().established, 1);
        assert_eq!(tb.stats().closed_total(), 1);
        assert_eq!(tb.stats().rejected, 1);
        let _ = p;
    }
}
