//! Contract-testing harness for [`Reconfigurator`] implementations.
//!
//! [`MiniNet`] drives a set of algorithm instances over an *ideal*
//! transport: every live node is exactly [`MiniNet::hops`] ad-hoc hops
//! from every other, floods reach everyone whose hop limit covers that
//! distance, unicasts arrive instantly, and a unicast to a dead node
//! reports back as unreachable — the same contract the full simulator's
//! routing layer provides, minus the radio. That makes it the right tool
//! for conformance tests: algorithm behaviour is isolated from mobility,
//! loss and AODV, runs take microseconds, and everything is
//! deterministic (nodes are always processed in id order).
//!
//! The conformance suite in `tests/conformance.rs` runs every
//! [`AlgoKind`] through this harness and checks the
//! contract every implementation must honour: sane neighbor lists
//! (sorted, duplicate-free, self-free, capacity-bounded), overlay
//! formation on a perfect network, tolerance of stray and duplicate
//! messages, and eviction of unreachable peers.

use std::collections::VecDeque;

use manet_des::{NodeId, Rng, SimDuration, SimTime};

use crate::adversary::AdversaryRole;
use crate::api::Reconfigurator;
use crate::msg::{OvAction, OverlayMsg};
use crate::params::OverlayParams;
use crate::{build_algo, AlgoKind, BoxedAlgo, Role};

/// Hard cap on actions processed per [`MiniNet::drain`] call: an
/// algorithm that keeps a message ping-pong going without consulting its
/// timer would otherwise hang the test.
const ACTION_BUDGET: usize = 100_000;

/// An ideal-transport network of [`Reconfigurator`] instances.
pub struct MiniNet {
    /// The parameters every node was built with.
    pub params: OverlayParams,
    algos: Vec<BoxedAlgo>,
    up: Vec<bool>,
    now: SimTime,
    /// Uniform ad-hoc distance between any two live nodes.
    pub hops: u8,
    inbox: VecDeque<(NodeId, OvAction)>,
    /// Messages delivered to algorithm entry points so far.
    pub delivered: u64,
    adversaries: Vec<Option<AdversaryRole>>,
    grey_seen: Vec<u64>,
}

impl MiniNet {
    /// Build `n` instances of `kind` with the given parameters.
    ///
    /// Hybrid qualifiers are distinct per node (higher id → higher
    /// qualifier, so role assignment is predictable); the Random
    /// algorithm's RNG is seeded from `seed` and the node id.
    pub fn new(kind: AlgoKind, n: usize, params: OverlayParams, seed: u64) -> Self {
        let algos = (0..n)
            .map(|i| {
                let id = NodeId(i as u32);
                let qualifier = (i as u32 + 1) * 10;
                build_algo(
                    kind,
                    id,
                    params,
                    qualifier,
                    Rng::new(seed ^ (i as u64) << 8),
                )
            })
            .collect();
        MiniNet {
            params,
            algos,
            up: vec![true; n],
            now: SimTime::ZERO,
            hops: 1,
            inbox: VecDeque::new(),
            delivered: 0,
            adversaries: vec![None; n],
            grey_seen: vec![0; n],
        }
    }

    /// Number of nodes (live or dead).
    pub fn len(&self) -> usize {
        self.algos.len()
    }

    /// True when the net has no nodes.
    pub fn is_empty(&self) -> bool {
        self.algos.is_empty()
    }

    /// The harness clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Read access to one node's algorithm.
    pub fn algo(&self, id: NodeId) -> &dyn Reconfigurator {
        self.algos[id.index()].as_ref()
    }

    /// One node's established neighbor list.
    pub fn neighbors(&self, id: NodeId) -> Vec<NodeId> {
        self.algos[id.index()].neighbors()
    }

    /// One node's current role.
    pub fn role(&self, id: NodeId) -> Role {
        self.algos[id.index()].role()
    }

    /// Is the node alive?
    pub fn is_up(&self, id: NodeId) -> bool {
        self.up[id.index()]
    }

    /// Start every live node, one second apart in id order, settling the
    /// traffic after each.
    ///
    /// The stagger mirrors the full simulator's join window and is
    /// load-bearing: with a zero-latency transport, two nodes starting at
    /// the same instant answer each other's probes simultaneously, both
    /// end up with a pending *outgoing* handshake to the other, and the
    /// crossed offers mutually reject — in deterministic lockstep they
    /// would re-collide on every retry, forever.
    pub fn start_all(&mut self) {
        for i in 0..self.algos.len() {
            if !self.up[i] {
                continue;
            }
            let actions = self.algos[i].start(self.now);
            self.enqueue(NodeId(i as u32), actions);
            self.drain();
            self.advance(SimDuration::from_secs(1));
        }
    }

    /// Advance the clock by `dt`, tick every live node whose timer is
    /// due (id order), and settle the resulting traffic.
    pub fn advance(&mut self, dt: SimDuration) {
        self.now += dt;
        for i in 0..self.algos.len() {
            if !self.up[i] {
                continue;
            }
            if self.algos[i].next_wake() <= self.now {
                let actions = self.algos[i].tick(self.now);
                self.enqueue(NodeId(i as u32), actions);
            }
        }
        self.drain();
    }

    /// Run for `secs` seconds of virtual time in one-second steps.
    pub fn run_secs(&mut self, secs: u64) {
        for _ in 0..secs {
            self.advance(SimDuration::from_secs(1));
        }
    }

    /// Kill a node: it stops ticking, floods skip it, and unicasts to it
    /// bounce back to the sender as unreachable.
    pub fn kill(&mut self, id: NodeId) {
        self.up[id.index()] = false;
    }

    /// Give a node an adversarial role.
    ///
    /// MiniNet has no routing layer, so the routing-level roles degrade to
    /// their overlay-visible symptom: a [`AdversaryRole::BlackHole`]
    /// swallows every message addressed to it *silently* (unlike a killed
    /// node, senders get no unreachable bounce — the defining trait of a
    /// black-hole), a [`AdversaryRole::GreyHole`] swallows every
    /// `drop_nth`-th. A [`AdversaryRole::Selfish`] node still receives
    /// everything and initiates its own traffic (start/tick actions flow),
    /// but the responses its handlers produce are discarded — it consumes
    /// without serving. [`AdversaryRole::RreqAmplifier`] and
    /// [`AdversaryRole::QueryFlooder`] act below/above this layer and are
    /// no-ops here.
    pub fn set_adversary(&mut self, id: NodeId, role: AdversaryRole) {
        self.adversaries[id.index()] = Some(role);
    }

    /// Should an incoming message to node `to` be swallowed? Advances the
    /// grey-hole counter as a side effect.
    fn swallows_incoming(&mut self, to: usize) -> bool {
        match self.adversaries[to] {
            Some(AdversaryRole::BlackHole) => true,
            Some(AdversaryRole::GreyHole { drop_nth }) => {
                self.grey_seen[to] += 1;
                self.grey_seen[to].is_multiple_of(drop_nth as u64)
            }
            _ => false,
        }
    }

    /// Are responses produced by node `i`'s message handlers discarded?
    fn is_selfish(&self, i: usize) -> bool {
        matches!(self.adversaries[i], Some(AdversaryRole::Selfish))
    }

    /// Inject a routed message into `to` as if `from` had sent it, and
    /// settle the fallout. For stray/duplicate-message conformance tests.
    pub fn inject_msg(&mut self, from: NodeId, to: NodeId, msg: OverlayMsg) {
        let actions = self.algos[to.index()].on_msg(self.now, from, self.hops, &msg);
        self.delivered += 1;
        self.enqueue(to, actions);
        self.drain();
    }

    /// Inject a flooded message into `to` as if `from` had originated it.
    pub fn inject_flood(&mut self, from: NodeId, to: NodeId, msg: OverlayMsg) {
        let actions = self.algos[to.index()].on_flood(self.now, from, self.hops, &msg);
        self.delivered += 1;
        self.enqueue(to, actions);
        self.drain();
    }

    /// The contract every implementation must honour at every instant:
    /// neighbor lists sorted by id, duplicate-free, self-free, within
    /// `MAXNCONN + MAXNSLAVES`, and only naming nodes that exist.
    /// Returns one message per violation (empty = conforming).
    pub fn contract_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        let capacity = self.params.max_conn + self.params.max_slaves;
        for (i, algo) in self.algos.iter().enumerate() {
            let neighbors = algo.neighbors();
            if neighbors.len() > capacity {
                v.push(format!(
                    "node {i}: {} neighbors exceed MAXNCONN+MAXNSLAVES = {capacity}",
                    neighbors.len()
                ));
            }
            for (k, &nb) in neighbors.iter().enumerate() {
                if nb.index() == i {
                    v.push(format!("node {i}: lists itself as a neighbor"));
                }
                if nb.index() >= self.algos.len() {
                    v.push(format!("node {i}: neighbor {} does not exist", nb.0));
                }
                if k > 0 && neighbors[k - 1] >= nb {
                    v.push(format!(
                        "node {i}: neighbor list not sorted/unique at position {k}: {:?}",
                        neighbors
                    ));
                }
            }
        }
        v
    }

    /// Total established connection endpoints across live nodes.
    pub fn total_neighbor_count(&self) -> usize {
        (0..self.algos.len())
            .filter(|&i| self.up[i])
            .map(|i| self.algos[i].neighbors().len())
            .sum()
    }

    fn enqueue(&mut self, from: NodeId, actions: Vec<OvAction>) {
        for a in actions {
            self.inbox.push_back((from, a));
        }
    }

    /// Process queued actions to quiescence. Floods fan out to every live
    /// node within the hop limit; unicasts arrive or bounce back as
    /// unreachable. Handlers run depth-per-message, breadth-per-action —
    /// deterministic because node order is id order throughout.
    fn drain(&mut self) {
        let mut budget = ACTION_BUDGET;
        while let Some((from, action)) = self.inbox.pop_front() {
            budget -= 1;
            assert!(
                budget > 0,
                "testkit: action storm (> {ACTION_BUDGET} actions without quiescing)"
            );
            if !self.up[from.index()] {
                continue; // the sender died with traffic in flight
            }
            match action {
                OvAction::Flood { ttl, msg } => {
                    if ttl < self.hops {
                        continue;
                    }
                    for i in 0..self.algos.len() {
                        if i == from.index() || !self.up[i] || self.swallows_incoming(i) {
                            continue;
                        }
                        let acts = self.algos[i].on_flood(self.now, from, self.hops, &msg);
                        self.delivered += 1;
                        if self.is_selfish(i) {
                            continue;
                        }
                        self.enqueue(NodeId(i as u32), acts);
                    }
                }
                OvAction::Send { to, msg } => {
                    if self.up[to.index()] {
                        if self.swallows_incoming(to.index()) {
                            continue; // swallowed: no delivery, no bounce
                        }
                        let acts = self.algos[to.index()].on_msg(self.now, from, self.hops, &msg);
                        self.delivered += 1;
                        if self.is_selfish(to.index()) {
                            continue;
                        }
                        self.enqueue(to, acts);
                    } else {
                        let acts = self.algos[from.index()].on_unreachable(self.now, to);
                        self.enqueue(from, acts);
                    }
                }
            }
        }
    }
}
