//! Byte-exact codec for [`OverlayMsg`].
//!
//! One tag byte per variant, little-endian fields in declaration order.
//! Like the modelled [`wire_size`](OverlayMsg::wire_size), overlay
//! messages stay tiny: the largest variant encodes in five bytes.
//! Corruption decodes to a typed [`WireError`], never a panic.

use manet_des::wire::{put_u32, put_u8};
use manet_des::{WireError, WireReader};

use crate::msg::{OverlayMsg, ProbeKind};

const TAG_PROBE: u8 = 1;
const TAG_OFFER: u8 = 2;
const TAG_ACCEPT: u8 = 3;
const TAG_CONFIRM: u8 = 4;
const TAG_REJECT: u8 = 5;
const TAG_PING: u8 = 6;
const TAG_PONG: u8 = 7;
const TAG_CAPTURE: u8 = 8;
const TAG_CAPTURE_REPLY: u8 = 9;
const TAG_SLAVE_REQUEST: u8 = 10;
const TAG_SLAVE_ACCEPT: u8 = 11;
const TAG_SLAVE_CONFIRM: u8 = 12;

fn probe_kind_tag(kind: ProbeKind) -> u8 {
    match kind {
        ProbeKind::Basic => 0,
        ProbeKind::Regular => 1,
        ProbeKind::Random => 2,
        ProbeKind::Master => 3,
    }
}

fn read_probe_kind(r: &mut WireReader<'_>) -> Result<ProbeKind, WireError> {
    match r.u8()? {
        0 => Ok(ProbeKind::Basic),
        1 => Ok(ProbeKind::Regular),
        2 => Ok(ProbeKind::Random),
        3 => Ok(ProbeKind::Master),
        tag => Err(WireError::BadTag {
            what: "probe kind",
            tag,
        }),
    }
}

/// Append the encoded message.
pub fn encode_overlay(msg: &OverlayMsg, buf: &mut Vec<u8>) {
    match msg {
        OverlayMsg::Probe { kind } => {
            put_u8(buf, TAG_PROBE);
            put_u8(buf, probe_kind_tag(*kind));
        }
        OverlayMsg::Offer { kind } => {
            put_u8(buf, TAG_OFFER);
            put_u8(buf, probe_kind_tag(*kind));
        }
        OverlayMsg::Accept { kind } => {
            put_u8(buf, TAG_ACCEPT);
            put_u8(buf, probe_kind_tag(*kind));
        }
        OverlayMsg::Confirm => put_u8(buf, TAG_CONFIRM),
        OverlayMsg::Reject => put_u8(buf, TAG_REJECT),
        OverlayMsg::Ping { token } => {
            put_u8(buf, TAG_PING);
            put_u32(buf, *token);
        }
        OverlayMsg::Pong { token } => {
            put_u8(buf, TAG_PONG);
            put_u32(buf, *token);
        }
        OverlayMsg::Capture { qualifier } => {
            put_u8(buf, TAG_CAPTURE);
            put_u32(buf, *qualifier);
        }
        OverlayMsg::CaptureReply { qualifier } => {
            put_u8(buf, TAG_CAPTURE_REPLY);
            put_u32(buf, *qualifier);
        }
        OverlayMsg::SlaveRequest => put_u8(buf, TAG_SLAVE_REQUEST),
        OverlayMsg::SlaveAccept { ok } => {
            put_u8(buf, TAG_SLAVE_ACCEPT);
            put_u8(buf, *ok as u8);
        }
        OverlayMsg::SlaveConfirm => put_u8(buf, TAG_SLAVE_CONFIRM),
    }
}

/// Decode one message written by [`encode_overlay`].
pub fn decode_overlay(r: &mut WireReader<'_>) -> Result<OverlayMsg, WireError> {
    match r.u8()? {
        TAG_PROBE => Ok(OverlayMsg::Probe {
            kind: read_probe_kind(r)?,
        }),
        TAG_OFFER => Ok(OverlayMsg::Offer {
            kind: read_probe_kind(r)?,
        }),
        TAG_ACCEPT => Ok(OverlayMsg::Accept {
            kind: read_probe_kind(r)?,
        }),
        TAG_CONFIRM => Ok(OverlayMsg::Confirm),
        TAG_REJECT => Ok(OverlayMsg::Reject),
        TAG_PING => Ok(OverlayMsg::Ping { token: r.u32()? }),
        TAG_PONG => Ok(OverlayMsg::Pong { token: r.u32()? }),
        TAG_CAPTURE => Ok(OverlayMsg::Capture {
            qualifier: r.u32()?,
        }),
        TAG_CAPTURE_REPLY => Ok(OverlayMsg::CaptureReply {
            qualifier: r.u32()?,
        }),
        TAG_SLAVE_REQUEST => Ok(OverlayMsg::SlaveRequest),
        TAG_SLAVE_ACCEPT => Ok(OverlayMsg::SlaveAccept {
            ok: r.flag("slave accept ok")?,
        }),
        TAG_SLAVE_CONFIRM => Ok(OverlayMsg::SlaveConfirm),
        tag => Err(WireError::BadTag {
            what: "overlay msg",
            tag,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every variant, all probe kinds included — kept in sync with the
    /// enum by the exhaustive match in the codec itself.
    pub(crate) fn all_variants() -> Vec<OverlayMsg> {
        let mut v = Vec::new();
        for kind in [
            ProbeKind::Basic,
            ProbeKind::Regular,
            ProbeKind::Random,
            ProbeKind::Master,
        ] {
            v.push(OverlayMsg::Probe { kind });
            v.push(OverlayMsg::Offer { kind });
            v.push(OverlayMsg::Accept { kind });
        }
        v.extend([
            OverlayMsg::Confirm,
            OverlayMsg::Reject,
            OverlayMsg::Ping { token: 0 },
            OverlayMsg::Ping { token: u32::MAX },
            OverlayMsg::Pong { token: 9 },
            OverlayMsg::Capture { qualifier: 42 },
            OverlayMsg::CaptureReply { qualifier: 7 },
            OverlayMsg::SlaveRequest,
            OverlayMsg::SlaveAccept { ok: true },
            OverlayMsg::SlaveAccept { ok: false },
            OverlayMsg::SlaveConfirm,
        ]);
        v
    }

    #[test]
    fn every_variant_round_trips() {
        for msg in all_variants() {
            let mut buf = Vec::new();
            encode_overlay(&msg, &mut buf);
            let mut r = WireReader::new(&buf);
            assert_eq!(decode_overlay(&mut r), Ok(msg.clone()), "{msg:?}");
            assert_eq!(r.finish(), Ok(()), "{msg:?} left bytes");
        }
    }

    #[test]
    fn encoded_size_stays_within_the_model() {
        // The codec must not exceed the modelled wire size by more than
        // the honesty of the model itself suggests; in fact they agree.
        for msg in all_variants() {
            let mut buf = Vec::new();
            encode_overlay(&msg, &mut buf);
            assert_eq!(buf.len() as u32, msg.wire_size(), "{msg:?}");
        }
    }

    #[test]
    fn bad_tags_are_typed() {
        let mut r = WireReader::new(&[0xEE]);
        assert_eq!(
            decode_overlay(&mut r),
            Err(WireError::BadTag {
                what: "overlay msg",
                tag: 0xEE
            })
        );
        let mut r = WireReader::new(&[TAG_PROBE, 9]);
        assert_eq!(
            decode_overlay(&mut r),
            Err(WireError::BadTag {
                what: "probe kind",
                tag: 9
            })
        );
        let mut r = WireReader::new(&[TAG_SLAVE_ACCEPT, 2]);
        assert_eq!(
            decode_overlay(&mut r),
            Err(WireError::BadTag {
                what: "slave accept ok",
                tag: 2
            })
        );
    }
}
