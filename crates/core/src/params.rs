//! Overlay parameters — the constants of the paper's four algorithms.
//!
//! Names follow the paper: `MAXNCONN`, `NHOPS_INITIAL`, `MAXNHOPS`, `NHOPS`
//! (Basic), `MAXDIST`, `TIMER`/`MAXTIMER`, `MAXNSLAVES`. Table 2 pins the
//! hop-count values; the paper does not publish its timer magnitudes, so
//! those defaults are our calibration (documented in DESIGN.md) — chosen so
//! that several (re)configuration cycles fit into the 3600 s scenarios.

use manet_des::SimDuration;

/// Tunables shared by the Basic, Regular, Random and Hybrid algorithms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OverlayParams {
    /// `MAXNCONN`: maximum overlay connections per node (paper: 3).
    pub max_conn: usize,
    /// `NHOPS_INITIAL`: first discovery radius in ad-hoc hops (paper: 2).
    pub nhops_initial: u8,
    /// `MAXNHOPS`: largest discovery radius (paper: 6).
    pub max_nhops: u8,
    /// `NHOPS`: the Basic algorithm's fixed discovery radius (paper: 6).
    pub nhops_basic: u8,
    /// `MAXDIST`: maximum distance in ad-hoc hops between connected
    /// neighbors (paper: 6). Random connections tolerate `2 * MAXDIST`.
    pub max_dist: u8,
    /// `TIMER_INITIAL`: first wait between connection attempts in the
    /// Regular/Random/Hybrid algorithms.
    pub timer_initial: SimDuration,
    /// `MAXTIMER`: cap of the doubling timer.
    pub max_timer: SimDuration,
    /// `TIMER`: the Basic algorithm's fixed wait between attempts.
    pub basic_timer: SimDuration,
    /// Interval between pings on an established connection.
    pub ping_interval: SimDuration,
    /// How long the pinger waits for a pong before closing.
    pub pong_timeout: SimDuration,
    /// How long a half-open handshake may stay pending.
    pub handshake_timeout: SimDuration,
    /// How long the Random algorithm collects probe responses before
    /// picking the farthest responder.
    pub random_response_wait: SimDuration,
    /// `MAXNSLAVES`: slaves per master in the Hybrid algorithm (paper: 3).
    pub max_slaves: usize,
    /// `MAXTIMERMASTER`: a master holding no slaves for this long reverts
    /// to the initial state.
    pub master_idle_timeout: SimDuration,
}

impl Default for OverlayParams {
    /// The paper's Table 2 values; timers per DESIGN.md calibration.
    fn default() -> Self {
        OverlayParams {
            max_conn: 3,
            nhops_initial: 2,
            max_nhops: 6,
            nhops_basic: 6,
            max_dist: 6,
            timer_initial: SimDuration::from_secs(5),
            max_timer: SimDuration::from_secs(80),
            basic_timer: SimDuration::from_secs(10),
            ping_interval: SimDuration::from_secs(10),
            pong_timeout: SimDuration::from_secs(5),
            handshake_timeout: SimDuration::from_secs(6),
            random_response_wait: SimDuration::from_secs(2),
            max_slaves: 3,
            master_idle_timeout: SimDuration::from_secs(60),
        }
    }
}

impl OverlayParams {
    /// Non-panicking validation: the first internal inconsistency,
    /// rendered; `None` when the parameters are sound.
    pub fn problem(&self) -> Option<String> {
        if self.max_conn < 1 {
            return Some("MAXNCONN must be at least 1".into());
        }
        if !(self.nhops_initial >= 1 && self.nhops_initial <= self.max_nhops) {
            return Some("NHOPS_INITIAL must lie in [1, MAXNHOPS]".into());
        }
        if !self.nhops_initial.is_multiple_of(2) {
            return Some("the paper's nhops cycle steps by 2".into());
        }
        if !self.max_nhops.is_multiple_of(2) {
            return Some("MAXNHOPS must be even for the cycle".into());
        }
        if self.nhops_basic < 1 {
            return Some("NHOPS (Basic) must be at least 1".into());
        }
        if self.max_dist < 1 {
            return Some("MAXDIST must be at least 1".into());
        }
        if self.timer_initial.is_zero() || self.timer_initial > self.max_timer {
            return Some("TIMER_INITIAL must lie in (0, MAXTIMER]".into());
        }
        if self.basic_timer.is_zero() {
            return Some("TIMER (Basic) must be positive".into());
        }
        if self.ping_interval.is_zero() {
            return Some("ping interval must be positive".into());
        }
        if self.pong_timeout.is_zero() {
            return Some("pong timeout must be positive".into());
        }
        if self.handshake_timeout.is_zero() {
            return Some("handshake timeout must be positive".into());
        }
        if self.max_slaves < 1 {
            return Some("MAXNSLAVES must be at least 1".into());
        }
        if self.master_idle_timeout.is_zero() {
            return Some("MAXTIMERMASTER must be positive".into());
        }
        None
    }

    /// Panics if the parameters are internally inconsistent.
    pub fn validate(&self) {
        if let Some(p) = self.problem() {
            panic!("{p}");
        }
    }

    /// The distance limit a connection of the given kind must respect, in
    /// ad-hoc hops (`None` = unlimited, the Basic algorithm).
    pub fn dist_limit(&self, kind: crate::conn::ConnKind) -> Option<u8> {
        use crate::conn::ConnKind::*;
        match kind {
            Basic => None,
            Regular | Master => Some(self.max_dist),
            Random => Some(self.max_dist.saturating_mul(2)),
            Slave => Some(self.max_dist),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conn::ConnKind;

    #[test]
    fn defaults_match_table_2() {
        let p = OverlayParams::default();
        p.validate();
        assert_eq!(p.max_conn, 3);
        assert_eq!(p.nhops_initial, 2);
        assert_eq!(p.max_nhops, 6);
        assert_eq!(p.nhops_basic, 6);
        assert_eq!(p.max_dist, 6);
        assert_eq!(p.max_slaves, 3);
    }

    #[test]
    fn distance_limits_by_kind() {
        let p = OverlayParams::default();
        assert_eq!(p.dist_limit(ConnKind::Basic), None);
        assert_eq!(p.dist_limit(ConnKind::Regular), Some(6));
        assert_eq!(p.dist_limit(ConnKind::Random), Some(12));
        assert_eq!(p.dist_limit(ConnKind::Master), Some(6));
        assert_eq!(p.dist_limit(ConnKind::Slave), Some(6));
    }

    #[test]
    #[should_panic(expected = "MAXNCONN")]
    fn zero_connections_rejected() {
        let p = OverlayParams {
            max_conn: 0,
            ..OverlayParams::default()
        };
        p.validate();
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn odd_nhops_rejected() {
        let p = OverlayParams {
            nhops_initial: 3,
            ..OverlayParams::default()
        };
        p.validate();
    }
}
