//! The substrate seam, pinned at compile-review level.
//!
//! The overlay algorithms run on two substrates: the DES (virtual clock)
//! and the real-time driver (wall clock). That only works if the crate
//! takes *every* notion of time as a [`manet_des::SimTime`] argument
//! through the typed verbs and never reads a clock of its own, and if it
//! never grows a dependency on a simulator crate. These tests scan the
//! crate's own sources and manifest, so a leak fails CI with the
//! offending file and line in the message rather than surfacing as a
//! Heisenbug on one substrate only.

use std::fs;
use std::path::Path;

/// Wall-clock APIs that must never appear in substrate-neutral protocol
/// code: any hit means the crate tells time behind the substrate's back.
const FORBIDDEN: &[&str] = &[
    "std::time",
    "Instant::now",
    "SystemTime",
    "elapsed()",
    "coarsetime",
];

fn scan_dir(dir: &Path, hits: &mut Vec<String>) {
    for entry in fs::read_dir(dir).expect("readable source dir") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            scan_dir(&path, hits);
            continue;
        }
        if path.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        let text = fs::read_to_string(&path).expect("readable source file");
        for (i, line) in text.lines().enumerate() {
            for pat in FORBIDDEN {
                if line.contains(pat) {
                    hits.push(format!("{}:{}: {}", path.display(), i + 1, line.trim()));
                }
            }
        }
    }
}

#[test]
fn no_wall_clock_reads_in_protocol_sources() {
    let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut hits = Vec::new();
    scan_dir(&src, &mut hits);
    assert!(
        hits.is_empty(),
        "substrate-neutral code reads a wall clock:\n{}",
        hits.join("\n")
    );
}

#[test]
fn manifest_depends_on_no_substrate() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR")).join("Cargo.toml");
    let text = fs::read_to_string(manifest).expect("readable manifest");
    for dep in ["manet-sim", "manet-rt"] {
        assert!(
            !text.contains(dep),
            "protocol crate must not depend on substrate crate {dep}"
        );
    }
}
