//! Reconfigurator contract conformance, run against all four algorithms.
//!
//! Every algorithm — present and future — must satisfy the same
//! behavioural contract regardless of its internal strategy. The
//! [`MiniNet`](p2p_core::testkit::MiniNet) harness provides an ideal
//! transport so that failures here are always the algorithm's fault, not
//! the network's.

use manet_des::{NodeId, SimDuration};
use p2p_core::testkit::MiniNet;
use p2p_core::{AlgoKind, OverlayMsg, OverlayParams, ProbeKind, Role};

fn net(kind: AlgoKind, n: usize) -> MiniNet {
    MiniNet::new(kind, n, OverlayParams::default(), 0xC0FFEE)
}

#[test]
fn every_algorithm_forms_an_overlay_on_an_ideal_transport() {
    for kind in AlgoKind::ALL {
        let mut net = net(kind, 8);
        net.start_all();
        net.run_secs(120);
        assert!(
            net.total_neighbor_count() > 0,
            "{kind}: no connections after 120 s on a perfect network"
        );
        // On an ideal transport most nodes should find at least one peer.
        let connected = (0..net.len())
            .filter(|&i| !net.neighbors(NodeId(i as u32)).is_empty())
            .count();
        assert!(
            connected * 2 >= net.len(),
            "{kind}: only {connected}/{} nodes connected",
            net.len()
        );
    }
}

#[test]
fn neighbor_lists_honour_the_contract_at_every_step() {
    for kind in AlgoKind::ALL {
        let mut net = net(kind, 10);
        net.start_all();
        for step in 0..180 {
            net.advance(SimDuration::from_secs(1));
            let violations = net.contract_violations();
            assert!(
                violations.is_empty(),
                "{kind} at t={}s: {:?}",
                step + 1,
                violations
            );
        }
    }
}

#[test]
fn stray_and_duplicate_messages_are_tolerated() {
    for kind in AlgoKind::ALL {
        let mut net = net(kind, 6);
        net.start_all();
        net.run_secs(60);
        let before = net.total_neighbor_count();
        // Messages nobody asked for, from a peer with no standing: a
        // conforming algorithm ignores or rejects them without panicking
        // and without corrupting its neighbor table.
        let stray = NodeId(5);
        for target in 0..4u32 {
            let to = NodeId(target);
            net.inject_msg(stray, to, OverlayMsg::Confirm);
            net.inject_msg(stray, to, OverlayMsg::Confirm); // duplicate
            net.inject_msg(stray, to, OverlayMsg::Reject);
            net.inject_msg(stray, to, OverlayMsg::Pong { token: 0xDEAD });
            net.inject_msg(stray, to, OverlayMsg::SlaveConfirm);
            net.inject_flood(
                stray,
                to,
                OverlayMsg::Probe {
                    kind: ProbeKind::Regular,
                },
            );
        }
        let violations = net.contract_violations();
        assert!(violations.is_empty(), "{kind}: {violations:?}");
        // The overlay must not have collapsed because of junk traffic.
        net.run_secs(30);
        assert!(
            net.total_neighbor_count() > 0,
            "{kind}: overlay collapsed after stray messages (was {before})"
        );
    }
}

#[test]
fn unreachable_peers_are_evicted() {
    for kind in AlgoKind::ALL {
        let mut net = net(kind, 8);
        net.start_all();
        net.run_secs(120);
        // Pick a node someone actually references, then kill it.
        let victim = (0..net.len() as u32)
            .map(NodeId)
            .find(|&id| {
                (0..net.len() as u32).any(|o| o != id.0 && net.neighbors(NodeId(o)).contains(&id))
            })
            .unwrap_or_else(|| panic!("{kind}: nobody referenced anybody after 120 s"));
        net.kill(victim);
        // Keep-alives must notice within a few ping/pong cycles.
        net.run_secs(120);
        for i in 0..net.len() as u32 {
            let id = NodeId(i);
            if id == victim || !net.is_up(id) {
                continue;
            }
            assert!(
                !net.neighbors(id).contains(&victim),
                "{kind}: node {i} still lists dead node {} after 120 s",
                victim.0
            );
        }
        let violations = net.contract_violations();
        assert!(violations.is_empty(), "{kind}: {violations:?}");
    }
}

#[test]
fn roles_match_the_algorithm_family() {
    // Decentralized algorithms are homogeneous: everyone stays a servent.
    for kind in [AlgoKind::Basic, AlgoKind::Regular, AlgoKind::Random] {
        let mut net = net(kind, 8);
        net.start_all();
        net.run_secs(120);
        for i in 0..net.len() as u32 {
            assert_eq!(
                net.role(NodeId(i)),
                Role::Servent,
                "{kind}: node {i} left the servent role"
            );
        }
    }
    // Hybrid partitions into the paper's four states and must elect at
    // least one master on an ideal transport with distinct qualifiers.
    let mut net = net(AlgoKind::Hybrid, 8);
    net.start_all();
    net.run_secs(240);
    let mut masters = 0;
    let mut slaves = 0;
    for i in 0..net.len() as u32 {
        match net.role(NodeId(i)) {
            Role::Master => masters += 1,
            Role::Slave => slaves += 1,
            Role::Initial | Role::Reserved => {}
            Role::Servent => panic!("Hybrid: node {i} reports the servent role"),
        }
    }
    assert!(masters > 0, "Hybrid: no masters after 240 s");
    assert!(slaves > 0, "Hybrid: no slaves after 240 s");
}

#[test]
fn survivors_keep_a_working_overlay_after_churn() {
    // The full simulator rebuilds algorithm instances after churn; the
    // survivors must heal around the hole rather than collapse.
    for kind in AlgoKind::ALL {
        let mut net = net(kind, 6);
        net.start_all();
        net.run_secs(90);
        net.kill(NodeId(0));
        net.run_secs(120);
        let violations = net.contract_violations();
        assert!(violations.is_empty(), "{kind}: {violations:?}");
        assert!(
            net.total_neighbor_count() > 0,
            "{kind}: survivors lost the overlay entirely"
        );
    }
}

#[test]
fn overlays_survive_a_blackhole_and_a_selfish_peer() {
    // A black-hole silently swallows everything addressed to it (no
    // unreachable bounce, unlike a crash) and a selfish peer consumes
    // traffic but never answers. Every algorithm must keep its contract
    // and the honest majority must still assemble an overlay; the
    // adversaries themselves are expected to end up isolated.
    use p2p_core::AdversaryRole;
    let blackhole = NodeId(3);
    let selfish = NodeId(5);
    for kind in AlgoKind::ALL {
        let mut net = net(kind, 10);
        net.set_adversary(blackhole, AdversaryRole::BlackHole);
        net.set_adversary(selfish, AdversaryRole::Selfish);
        net.start_all();
        net.run_secs(300);
        let violations = net.contract_violations();
        assert!(violations.is_empty(), "{kind}: {violations:?}");
        // Degradation is expected but must be bounded: the 8 honest nodes
        // still hold a working overlay among themselves.
        let honest_endpoints: usize = (0..net.len() as u32)
            .map(NodeId)
            .filter(|&id| id != blackhole && id != selfish)
            .map(|id| {
                net.neighbors(id)
                    .iter()
                    .filter(|&&nb| nb != blackhole && nb != selfish)
                    .count()
            })
            .sum();
        assert!(
            honest_endpoints >= 6,
            "{kind}: honest overlay collapsed ({honest_endpoints} endpoints)"
        );
        // The black-hole never completes a handshake: nothing reaches it.
        assert!(
            net.neighbors(blackhole).is_empty(),
            "{kind}: black-hole established connections without receiving traffic"
        );
    }
}

#[test]
fn greyhole_degrades_but_does_not_wedge() {
    use p2p_core::AdversaryRole;
    for kind in AlgoKind::ALL {
        let mut net = net(kind, 8);
        net.set_adversary(NodeId(2), AdversaryRole::GreyHole { drop_nth: 2 });
        net.start_all();
        net.run_secs(240);
        let violations = net.contract_violations();
        assert!(violations.is_empty(), "{kind}: {violations:?}");
        assert!(
            net.total_neighbor_count() > 0,
            "{kind}: a single grey-hole destroyed the overlay"
        );
    }
}
