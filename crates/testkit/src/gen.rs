//! Case generation: the [`Strategy`] trait and its combinators.
//!
//! A strategy knows how to *generate* a value from a seeded [`Gen`] stream
//! and how to *shrink* a failing value toward something simpler. Shrinking
//! is candidate-based: `shrink` proposes a bounded list of strictly simpler
//! values, and the runner greedily descends through the first candidate that
//! still falsifies the property.

use manet_des::Rng;

/// The source of randomness for one generated case: a thin wrapper around
/// the simulator's own PRNG, so a case is a pure function of its seed.
pub struct Gen {
    rng: Rng,
}

impl Gen {
    /// A generator stream for one case seed.
    pub fn new(seed: u64) -> Self {
        Gen {
            rng: Rng::new(seed),
        }
    }

    /// The underlying PRNG, for custom strategies.
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }
}

/// A recipe for generating (and shrinking) values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value: Clone + std::fmt::Debug;

    /// Draw one value from the stream.
    fn generate(&self, g: &mut Gen) -> Self::Value;

    /// Propose strictly simpler candidates for a failing value. An empty
    /// list means the value is already minimal. Candidates are tried in
    /// order, so put the most aggressive simplifications first.
    fn shrink(&self, _v: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        /// Uniform draw from a half-open range; shrinks toward the start.
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, g: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + g.rng().below(span) as $t
            }

            fn shrink(&self, v: &$t) -> Vec<$t> {
                let lo = self.start;
                if *v <= lo {
                    return Vec::new();
                }
                let span = *v - lo;
                let mut out = vec![lo, lo + span / 4, lo + span / 2, lo + span - span / 4, *v - 1];
                out.retain(|c| c < v);
                out.dedup();
                out
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

/// The full `u64` domain (`any::<u64>()` in spirit); shrinks by halving
/// toward zero.
#[derive(Clone, Copy, Debug)]
pub struct AnyU64;

/// Strategy over all 64-bit values.
pub fn any_u64() -> AnyU64 {
    AnyU64
}

impl Strategy for AnyU64 {
    type Value = u64;

    fn generate(&self, g: &mut Gen) -> u64 {
        g.rng().next_u64()
    }

    fn shrink(&self, v: &u64) -> Vec<u64> {
        if *v == 0 {
            return Vec::new();
        }
        let mut out = vec![0, *v / 4, *v / 2, *v - *v / 4, *v - 1];
        out.retain(|c| c < v);
        out.dedup();
        out
    }
}

/// Fair coin; `true` shrinks to `false`.
#[derive(Clone, Copy, Debug)]
pub struct AnyBool;

/// Strategy over booleans.
pub fn any_bool() -> AnyBool {
    AnyBool
}

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, g: &mut Gen) -> bool {
        g.rng().chance(0.5)
    }

    fn shrink(&self, v: &bool) -> Vec<bool> {
        if *v {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Vectors of `elem` values with a length drawn from `len` (half-open).
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    elem: S,
    len: std::ops::Range<usize>,
}

/// A vector strategy: lengths uniform in `len`, elements from `elem`.
/// Shrinks by dropping elements down to the minimum length, then by
/// shrinking individual elements.
pub fn vec_of<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { elem, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, g: &mut Gen) -> Vec<S::Value> {
        let n = self.len.generate(g);
        (0..n).map(|_| self.elem.generate(g)).collect()
    }

    fn shrink(&self, v: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let min = self.len.start;
        let mut out = Vec::new();
        // Structural shrinks first: shorter vectors fail faster.
        if v.len() > min {
            let half = min.max(v.len() / 2);
            if half < v.len() {
                out.push(v[..half].to_vec());
                out.push(v[v.len() - half..].to_vec());
            }
            let mut minus_last = v.clone();
            minus_last.pop();
            out.push(minus_last);
            let mut minus_first = v.clone();
            minus_first.remove(0);
            out.push(minus_first);
        }
        // Then element-wise shrinks, two candidates per slot, capped so the
        // runner's shrink budget is spent breadth-first.
        const ELEMENT_CANDIDATE_CAP: usize = 32;
        for (i, item) in v.iter().enumerate() {
            if out.len() >= ELEMENT_CANDIDATE_CAP {
                break;
            }
            for simpler in self.elem.shrink(item).into_iter().take(2) {
                let mut candidate = v.clone();
                candidate[i] = simpler;
                out.push(candidate);
            }
        }
        out
    }
}

/// `Option<T>` values: `Some` three times out of four; shrinks to `None`
/// first, then shrinks the payload.
#[derive(Clone, Debug)]
pub struct OptionStrategy<S> {
    inner: S,
}

/// Strategy over optional values of `inner`.
pub fn option_of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, g: &mut Gen) -> Option<S::Value> {
        if g.rng().chance(0.75) {
            Some(self.inner.generate(g))
        } else {
            None
        }
    }

    fn shrink(&self, v: &Option<S::Value>) -> Vec<Option<S::Value>> {
        match v {
            None => Vec::new(),
            Some(x) => {
                let mut out = vec![None];
                out.extend(self.inner.shrink(x).into_iter().map(Some));
                out
            }
        }
    }
}

/// A uniform choice among a fixed list of values; shrinks toward the
/// front of the list.
#[derive(Clone, Debug)]
pub struct ElemOf<T> {
    items: Vec<T>,
}

/// Strategy that picks one of `items`. Order the list simplest-first:
/// shrinking walks a failing choice toward index 0.
pub fn elem_of<T: Clone + std::fmt::Debug + PartialEq>(items: Vec<T>) -> ElemOf<T> {
    assert!(!items.is_empty(), "empty choice strategy");
    ElemOf { items }
}

impl<T: Clone + std::fmt::Debug + PartialEq> Strategy for ElemOf<T> {
    type Value = T;

    fn generate(&self, g: &mut Gen) -> T {
        let i = g.rng().below(self.items.len() as u64) as usize;
        self.items[i].clone()
    }

    fn shrink(&self, v: &T) -> Vec<T> {
        // Every item earlier in the list than the failing one, simplest
        // first, so greedy descent bottoms out at index 0.
        match self.items.iter().position(|x| x == v) {
            Some(i) => self.items[..i].to_vec(),
            None => Vec::new(),
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $v:ident / $ix:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, g: &mut Gen) -> Self::Value {
                ($(self.$ix.generate(g),)+)
            }

            fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for simpler in self.$ix.shrink(&v.$ix).into_iter().take(3) {
                        let mut candidate = v.clone();
                        candidate.$ix = simpler;
                        out.push(candidate);
                    }
                )+
                out
            }
        }
    )*};
}

tuple_strategy! {
    (A / a / 0);
    (A / a / 0, B / b / 1);
    (A / a / 0, B / b / 1, C / c / 2);
    (A / a / 0, B / b / 1, C / c / 2, D / d / 3);
    (A / a / 0, B / b / 1, C / c / 2, D / d / 3, E / e / 4);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds_and_are_deterministic() {
        let strat = 10u32..20;
        let mut a = Gen::new(7);
        let mut b = Gen::new(7);
        for _ in 0..200 {
            let x = strat.generate(&mut a);
            assert!((10..20).contains(&x));
            assert_eq!(x, strat.generate(&mut b), "same seed, same stream");
        }
    }

    #[test]
    fn range_shrink_moves_strictly_down() {
        let strat = 5u64..1000;
        let mut v = strat.generate(&mut Gen::new(3));
        while let Some(&first) = strat.shrink(&v).first() {
            assert!(first < v);
            v = first;
        }
        assert_eq!(v, 5, "greedy descent bottoms out at the range start");
    }

    #[test]
    fn vec_lengths_respect_the_range() {
        let strat = vec_of(0u8..10, 2..7);
        let mut g = Gen::new(11);
        for _ in 0..100 {
            let v = strat.generate(&mut g);
            assert!((2..7).contains(&v.len()));
        }
    }

    #[test]
    fn vec_shrink_never_goes_below_min_len() {
        let strat = vec_of(0u8..10, 3..9);
        let v = strat.generate(&mut Gen::new(13));
        for candidate in strat.shrink(&v) {
            assert!(candidate.len() >= 3, "candidate {candidate:?} too short");
        }
    }

    #[test]
    fn option_shrinks_to_none_first() {
        let strat = option_of(1u32..50);
        let shrunk = strat.shrink(&Some(30));
        assert_eq!(shrunk[0], None);
        assert!(shrunk[1..].iter().all(|c| matches!(c, Some(x) if *x < 30)));
        assert!(strat.shrink(&None).is_empty());
    }

    #[test]
    fn elem_of_picks_listed_values_and_shrinks_to_front() {
        let strat = elem_of(vec!["a", "b", "c", "d"]);
        let mut g = Gen::new(19);
        for _ in 0..50 {
            assert!(["a", "b", "c", "d"].contains(&strat.generate(&mut g)));
        }
        assert_eq!(strat.shrink(&"d"), vec!["a", "b", "c"]);
        assert!(strat.shrink(&"a").is_empty());
        assert!(
            strat.shrink(&"zzz").is_empty(),
            "unknown values are minimal"
        );
    }

    #[test]
    fn tuples_generate_componentwise() {
        let strat = (0u8..5, 10u32..20, any_bool());
        let (a, b, _c) = strat.generate(&mut Gen::new(17));
        assert!(a < 5);
        assert!((10..20).contains(&b));
        let shrunk = strat.shrink(&(4, 19, true));
        assert!(!shrunk.is_empty());
        for (x, y, _) in shrunk {
            assert!(x < 5 && (10..20).contains(&y));
        }
    }
}
