//! The property runner: seeded case loop, bounded shrinking, replayable
//! failure reports.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};

use manet_des::rng::splitmix64;

use crate::gen::{Gen, Strategy};

/// Environment variable that replays one specific generated case.
pub const SEED_ENV: &str = "TESTKIT_SEED";
/// Environment variable that overrides the per-property case count.
pub const CASES_ENV: &str = "TESTKIT_CASES";

/// Per-property configuration.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Generated cases per property (overridable via `TESTKIT_CASES`).
    pub cases: u32,
    /// Upper bound on property re-executions spent shrinking a failure.
    pub max_shrink_steps: u32,
    /// Master seed the per-case seeds are derived from. Fixed by default so
    /// CI runs are bit-reproducible; change it to explore new cases.
    pub master_seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 32,
            max_shrink_steps: 400,
            master_seed: 0x1903_0D15_5EED_CA5E,
        }
    }
}

impl Config {
    /// A config running `n` cases per property.
    pub fn cases(n: u32) -> Self {
        Config {
            cases: n,
            ..Config::default()
        }
    }
}

/// A falsified case: what went wrong, as text.
#[derive(Clone, Debug)]
pub struct CaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl CaseError {
    /// A failure with the given description.
    pub fn fail(message: impl Into<String>) -> Self {
        CaseError {
            message: message.into(),
        }
    }
}

/// What a property body returns: `Ok(())` or a described failure.
pub type CaseResult = Result<(), CaseError>;

thread_local! {
    /// True while the runner probes shrink candidates, so the forwarding
    /// panic hook stays quiet about panics we catch anyway.
    static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}

/// Install (once) a panic hook that suppresses output for panics the runner
/// catches on the current thread, and forwards everything else.
fn install_quiet_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(|q| q.get()) {
                previous(info);
            }
        }));
    });
}

/// Derive the seed of case `ix` of a named property from the master seed.
fn case_seed(master: u64, name: &str, ix: u32) -> u64 {
    // FNV-1a over the property name keeps distinct properties on distinct
    // streams even with equal master seeds and case indices.
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut s = master ^ h ^ (ix as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut s)
}

/// Run one property execution, converting panics into failures.
fn run_case<V, F>(prop: &F, value: &V) -> CaseResult
where
    F: Fn(&V) -> CaseResult,
{
    QUIET_PANICS.with(|q| q.set(true));
    let outcome = catch_unwind(AssertUnwindSafe(|| prop(value)));
    QUIET_PANICS.with(|q| q.set(false));
    match outcome {
        Ok(result) => result,
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "panic with non-string payload".to_string()
            };
            Err(CaseError::fail(format!("panicked: {msg}")))
        }
    }
}

/// Greedily descend through shrink candidates that keep the property
/// falsified. Returns the simplest failing value found, its error, and the
/// number of property executions spent.
fn shrink_failure<S, F>(
    strategy: &S,
    mut value: S::Value,
    mut error: CaseError,
    budget: u32,
    prop: &F,
) -> (S::Value, CaseError, u32)
where
    S: Strategy,
    F: Fn(&S::Value) -> CaseResult,
{
    let mut steps = 0u32;
    'descend: while steps < budget {
        for candidate in strategy.shrink(&value) {
            steps += 1;
            if let Err(e) = run_case(prop, &candidate) {
                value = candidate;
                error = e;
                continue 'descend;
            }
            if steps >= budget {
                break;
            }
        }
        break; // no candidate still fails: local minimum
    }
    (value, error, steps)
}

fn parse_seed(text: &str) -> u64 {
    let t = text.trim();
    let parsed = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        t.parse()
    };
    parsed.unwrap_or_else(|_| panic!("[testkit] unparseable {SEED_ENV} value: {text:?}"))
}

/// Check a property over `cfg.cases` generated inputs.
///
/// On the first falsified case the input is shrunk (at most
/// `cfg.max_shrink_steps` extra executions) and the test panics with the
/// minimal input, the failure, and the case seed to replay via
/// `TESTKIT_SEED=<seed> cargo test <name>`.
pub fn check<S, F>(name: &str, cfg: &Config, strategy: S, prop: F)
where
    S: Strategy,
    F: Fn(&S::Value) -> CaseResult,
{
    install_quiet_hook();
    let replay: Option<u64> = std::env::var(SEED_ENV).ok().map(|v| parse_seed(&v));
    let cases = match replay {
        Some(_) => 1,
        None => std::env::var(CASES_ENV)
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(cfg.cases)
            .max(1),
    };

    for ix in 0..cases {
        let seed = replay.unwrap_or_else(|| case_seed(cfg.master_seed, name, ix));
        let value = strategy.generate(&mut Gen::new(seed));
        if let Err(error) = run_case(&prop, &value) {
            let (minimal, error, steps) =
                shrink_failure(&strategy, value, error, cfg.max_shrink_steps, &prop);
            let short = name.rsplit("::").next().unwrap_or(name);
            panic!(
                "[testkit] property '{name}' falsified at case {ix}/{cases}\n  \
                 case seed: {seed:#018x}\n  \
                 minimal input (after {steps} shrink steps): {minimal:?}\n  \
                 failure: {message}\n  \
                 replay: {SEED_ENV}={seed:#x} cargo test {short}",
                message = error.message,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::vec_of;

    #[test]
    fn passing_property_is_silent() {
        check("runner::always_true", &Config::cases(64), 0u32..100, |&v| {
            if v < 100 {
                Ok(())
            } else {
                Err(CaseError::fail("impossible"))
            }
        });
    }

    #[test]
    fn case_seeds_differ_by_property_case_and_master() {
        let a = case_seed(1, "p", 0);
        assert_eq!(a, case_seed(1, "p", 0), "derivation is pure");
        assert_ne!(a, case_seed(1, "p", 1));
        assert_ne!(a, case_seed(1, "q", 0));
        assert_ne!(a, case_seed(2, "p", 0));
    }

    #[test]
    fn failure_reports_replayable_seed_and_shrinks() {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            check(
                "runner::find_big",
                &Config::cases(200),
                0u64..10_000,
                |&v| {
                    if v < 100 {
                        Ok(())
                    } else {
                        Err(CaseError::fail("too big"))
                    }
                },
            );
        }));
        let payload = outcome.expect_err("property must be falsified");
        let msg = payload
            .downcast_ref::<String>()
            .expect("panic message is a String");
        assert!(msg.contains("case seed: 0x"), "no seed in: {msg}");
        assert!(msg.contains("TESTKIT_SEED="), "no replay line in: {msg}");
        assert!(
            msg.contains("minimal input (after"),
            "no shrink report in: {msg}"
        );
        // Greedy integer shrinking lands on the smallest failing value.
        assert!(msg.contains(": 100\n"), "not minimal: {msg}");
    }

    #[test]
    fn panics_are_caught_and_shrunk_like_failures() {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            check(
                "runner::panicky",
                &Config::cases(50),
                vec_of(0u8..10, 1..30),
                |v| {
                    assert!(v.len() < 3, "vector too long");
                    Ok(())
                },
            );
        }));
        let payload = outcome.expect_err("panicking property must fail");
        let msg = payload.downcast_ref::<String>().unwrap();
        assert!(msg.contains("panicked: vector too long"), "got: {msg}");
        // Minimal failing vector has exactly 3 elements, all shrunk to 0.
        assert!(msg.contains("[0, 0, 0]"), "not minimal: {msg}");
    }

    #[test]
    fn generation_is_reproducible_across_runs() {
        let collect = || {
            // Property bodies are Fn, so record via interior mutability.
            let seen = std::cell::RefCell::new(Vec::new());
            check(
                "runner::collector",
                &Config::cases(16),
                (0u32..1000, vec_of(0u8..5, 1..6)),
                |case| {
                    seen.borrow_mut().push(case.clone());
                    Ok(())
                },
            );
            seen.into_inner()
        };
        assert_eq!(collect(), collect());
    }
}
