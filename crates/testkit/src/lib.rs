//! # manet-testkit — hermetic deterministic property testing
//!
//! A self-contained replacement for external property-testing crates, so the
//! whole workspace builds and tests offline. Case generation is driven by
//! [`manet_des::Rng`] (the simulator's own xoshiro256++ PRNG), which makes
//! every generated case a pure function of a 64-bit seed — the same property
//! the simulator itself guarantees for whole worlds.
//!
//! Three pieces:
//!
//! * [`gen`] — the [`Strategy`] trait and combinators: integer ranges,
//!   [`vec_of`], [`option_of`], tuples up to arity five;
//! * [`runner`] — [`check`] runs a property over N seeded cases, shrinks the
//!   first failing input (bounded), and panics with a **replayable case
//!   seed**;
//! * the macros — [`properties!`] declares `#[test]` functions from
//!   `name(arg in strategy, ...)` clauses, and [`prop_assert!`] /
//!   [`prop_assert_eq!`] / [`prop_assert_ne!`] report failures without
//!   unwinding (panics are also caught and treated as failures).
//!
//! ## Replaying a failure
//!
//! A falsified property panics with a message like:
//!
//! ```text
//! [testkit] property 'crate::tests::my_prop' falsified at case 7/32
//!   case seed: 0x3f84d5b10c2a9e71
//!   minimal input (after 23 shrink steps): (3, [1, 1])
//!   failure: assertion failed: x < 3
//!   replay: TESTKIT_SEED=0x3f84d5b10c2a9e71 cargo test my_prop
//! ```
//!
//! Setting `TESTKIT_SEED` re-runs exactly that generated case (shrinking
//! still applies); `TESTKIT_CASES` overrides the per-property case count.
//!
//! ```
//! manet_testkit::properties! {
//!     config = manet_testkit::Config::cases(32);
//!
//!     /// Addition on small naturals never overflows a u32.
//!     fn add_is_bounded(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert!(a.checked_add(b).is_some());
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! # fn main() {}
//! ```

pub mod gen;
pub mod runner;

pub use gen::{
    any_bool, any_u64, elem_of, option_of, vec_of, AnyBool, AnyU64, ElemOf, Gen, OptionStrategy,
    Strategy, VecStrategy,
};
pub use runner::{check, CaseError, CaseResult, Config};

/// Assert a condition inside a property body; on failure the runner records
/// the message, shrinks the input and reports a replayable seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::CaseError::fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($arg:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::CaseError::fail(format!(
                "assertion failed: {} — {} ({}:{})",
                stringify!($cond),
                format!($($arg)+),
                file!(),
                line!()
            )));
        }
    };
}

/// Assert two expressions are equal (their `Debug` forms are reported).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::CaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n  right: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($arg:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::CaseError::fail(format!(
                "assertion failed: {} == {} — {}\n  left: {:?}\n  right: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                format!($($arg)+),
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
}

/// Assert two expressions are *not* equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::CaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                file!(),
                line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($arg:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::CaseError::fail(format!(
                "assertion failed: {} != {} — {}\n  both: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                format!($($arg)+),
                l,
                file!(),
                line!()
            )));
        }
    }};
}

/// Declare seeded property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` clause becomes a `#[test]`
/// running the body over [`Config::cases`] generated inputs. The body may use
/// the `prop_assert*` macros; plain `assert!`/panics are caught too.
#[macro_export]
macro_rules! properties {
    (
        config = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __cfg: $crate::Config = $cfg;
                $crate::check(
                    concat!(module_path!(), "::", stringify!($name)),
                    &__cfg,
                    ($($strat,)+),
                    |__case| {
                        let ($($arg,)+) = ::std::clone::Clone::clone(__case);
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}
