//! Gauss-Markov mobility: temporally correlated speed and heading.
//!
//! At fixed intervals the node redraws speed and heading from an AR(1)
//! process:
//!
//! ```text
//! s[n+1] = a*s[n] + (1-a)*mean_s + sqrt(1-a^2) * N(0, sigma_s)
//! h[n+1] = a*h[n] + (1-a)*mean_h + sqrt(1-a^2) * N(0, sigma_h)
//! ```
//!
//! with `a` the memory parameter (`a = 0` → random walk, `a = 1` → linear
//! motion). Near a wall the mean heading is biased toward the area centre,
//! the standard boundary treatment (Camp et al., the mobility survey the
//! paper cites).

use manet_des::{Rng, SimDuration, SimTime};
use manet_geom::{Point, Rect, Vector};

use crate::model::Mobility;

/// Parameters for [`GaussMarkov`].
#[derive(Clone, Copy, Debug)]
pub struct GaussMarkovCfg {
    /// Simulation area.
    pub bounds: Rect,
    /// Memory parameter in `[0, 1]`.
    pub alpha: f64,
    /// Long-run mean speed (m/s), also the initial speed.
    pub mean_speed: f64,
    /// Speed innovation standard deviation.
    pub speed_std: f64,
    /// Heading innovation standard deviation (radians).
    pub heading_std: f64,
    /// Seconds between redraws (one epoch).
    pub interval: f64,
    /// Maximum speed clamp (keeps the AR process physical).
    pub max_speed: f64,
}

impl GaussMarkovCfg {
    /// Pedestrian defaults comparable to the paper's waypoint parameters.
    pub fn walking(bounds: Rect) -> Self {
        GaussMarkovCfg {
            bounds,
            alpha: 0.85,
            mean_speed: 0.5,
            speed_std: 0.25,
            heading_std: 0.6,
            interval: 5.0,
            max_speed: 1.0,
        }
    }

    fn validate(&self) {
        assert!((0.0..=1.0).contains(&self.alpha), "alpha in [0,1]");
        assert!(self.mean_speed >= 0.0 && self.max_speed > 0.0);
        assert!(self.interval > 0.0);
    }
}

/// Gauss-Markov state for a single node.
#[derive(Clone, Debug)]
pub struct GaussMarkov {
    cfg: GaussMarkovCfg,
    from: Point,
    speed: f64,
    heading: f64,
    start: SimTime,
    end: SimTime,
}

impl GaussMarkov {
    /// Start at `start_pos` with a random initial heading.
    pub fn new(cfg: GaussMarkovCfg, start_pos: Point, rng: &mut Rng) -> Self {
        cfg.validate();
        let mut m = GaussMarkov {
            from: cfg.bounds.clamp(start_pos),
            speed: cfg.mean_speed,
            heading: rng.range_f64(0.0, std::f64::consts::TAU),
            start: SimTime::ZERO,
            end: SimTime::ZERO + SimDuration::from_secs_f64(cfg.interval),
            cfg,
        };
        m.clip_epoch_to_wall();
        m
    }

    /// Uniformly random starting position inside `bounds`.
    pub fn random_start(cfg: GaussMarkovCfg, rng: &mut Rng) -> Self {
        let p = Point::new(
            rng.range_f64(cfg.bounds.x0, cfg.bounds.x1),
            rng.range_f64(cfg.bounds.y0, cfg.bounds.y1),
        );
        Self::new(cfg, p, rng)
    }

    fn velocity(&self) -> Vector {
        Vector::from_angle(self.heading) * self.speed
    }

    /// Shorten the epoch so the straight segment never leaves the area.
    fn clip_epoch_to_wall(&mut self) {
        let v = self.velocity();
        if v.length() <= f64::EPSILON {
            return;
        }
        if let Some(hit) = crate::walk::time_to_wall(self.cfg.bounds, self.from, v) {
            let dur = (self.end - self.start).as_secs_f64();
            if hit < dur {
                self.end = self.start + SimDuration::from_secs_f64(hit.max(1e-3));
            }
        }
    }
}

impl Mobility for GaussMarkov {
    fn position(&self, t: SimTime) -> Point {
        let t = t.clamp(self.start, self.end);
        let dt = (t - self.start).as_secs_f64();
        self.cfg.bounds.clamp(self.from + self.velocity() * dt)
    }

    fn epoch_end(&self) -> SimTime {
        self.end
    }

    fn advance(&mut self, now: SimTime, rng: &mut Rng) {
        self.from = self.position(now);
        let a = self.cfg.alpha;
        let noise = (1.0 - a * a).sqrt();

        // Bias the mean heading toward the centre when close to a wall so
        // nodes steer away instead of hugging the boundary.
        let b = self.cfg.bounds;
        let margin = 0.1 * b.width().min(b.height());
        let near_wall = self.from.x < b.x0 + margin
            || self.from.x > b.x1 - margin
            || self.from.y < b.y0 + margin
            || self.from.y > b.y1 - margin;
        let mean_heading = if near_wall {
            (b.center() - self.from).angle()
        } else {
            self.heading
        };

        self.speed = (a * self.speed
            + (1.0 - a) * self.cfg.mean_speed
            + noise * rng.normal(0.0, self.cfg.speed_std))
        .clamp(0.0, self.cfg.max_speed);
        self.heading = a * self.heading
            + (1.0 - a) * mean_heading
            + noise * rng.normal(0.0, self.cfg.heading_std);

        self.start = now;
        self.end = now + SimDuration::from_secs_f64(self.cfg.interval);
        self.clip_epoch_to_wall();
        if self.end <= self.start {
            self.end = self.start + SimDuration::from_millis(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Mobility;
    use manet_des::Rng;

    fn cfg() -> GaussMarkovCfg {
        GaussMarkovCfg::walking(Rect::sized(100.0, 100.0))
    }

    #[test]
    fn stays_in_bounds() {
        let mut rng = Rng::new(1);
        let bounds = Rect::sized(100.0, 100.0);
        let mut m = GaussMarkov::random_start(cfg(), &mut rng);
        for _ in 0..2000 {
            let end = m.epoch_end();
            assert!(bounds.contains(m.position(end)));
            m.advance(end, &mut rng);
        }
    }

    #[test]
    fn speed_stays_clamped() {
        let mut rng = Rng::new(2);
        let c = cfg();
        let mut m = GaussMarkov::random_start(c, &mut rng);
        for _ in 0..1000 {
            let end = m.epoch_end();
            m.advance(end, &mut rng);
            assert!((0.0..=c.max_speed).contains(&m.speed));
        }
    }

    #[test]
    fn continuous_across_epochs() {
        let mut rng = Rng::new(3);
        let mut m = GaussMarkov::random_start(cfg(), &mut rng);
        for _ in 0..500 {
            let end = m.epoch_end();
            let before = m.position(end);
            m.advance(end, &mut rng);
            assert!(before.distance(m.position(end)) < 1e-6);
        }
    }

    #[test]
    fn high_alpha_preserves_heading_more() {
        // With alpha = 1 the process is deterministic linear motion.
        let mut rng = Rng::new(4);
        let c = GaussMarkovCfg {
            alpha: 1.0,
            ..cfg()
        };
        let mut m = GaussMarkov::new(c, Point::new(50.0, 50.0), &mut rng);
        let h0 = m.heading;
        let s0 = m.speed;
        let end = m.epoch_end();
        m.advance(end, &mut rng);
        assert!((m.heading - h0).abs() < 1e-9);
        assert!((m.speed - s0).abs() < 1e-9);
    }

    #[test]
    fn mean_speed_roughly_recovered() {
        let mut rng = Rng::new(5);
        let c = cfg();
        let mut m = GaussMarkov::random_start(c, &mut rng);
        let mut sum = 0.0;
        let n = 5000;
        for _ in 0..n {
            let end = m.epoch_end();
            m.advance(end, &mut rng);
            sum += m.speed;
        }
        let mean = sum / n as f64;
        // Clamping skews the mean a little; accept a generous band.
        assert!(
            (mean - c.mean_speed).abs() < 0.15,
            "long-run mean speed {mean} far from {}",
            c.mean_speed
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut rng = Rng::new(seed);
            let mut m = GaussMarkov::random_start(cfg(), &mut rng);
            for _ in 0..100 {
                let e = m.epoch_end();
                m.advance(e, &mut rng);
            }
            let p = m.position(m.epoch_end());
            (p.x, p.y)
        };
        assert_eq!(run(6), run(6));
    }
}
