//! Reference Point Group Mobility (RPGM).
//!
//! Nodes move in teams: a virtual *group leader* follows Random Waypoint,
//! and each member wanders inside a disc around the leader's position —
//! the standard model for rescue squads, platoons, or tour groups (Camp et
//! al.'s survey, which the paper cites for its mobility model).
//!
//! Implementation note: members never share mutable state. Every member
//! owns a *replica* of its group's leader trajectory, seeded identically
//! (`group_seed`), so all replicas advance through exactly the same
//! waypoints — cheap, lock-free, and deterministic. The member's own RNG
//! only drives its offset inside the group disc; offsets are interpolated
//! between redraws so trajectories stay continuous.

use manet_des::{Rng, SimDuration, SimTime};
use manet_geom::{Point, Rect, Vector};

use crate::model::Mobility;
use crate::waypoint::{RandomWaypoint, RandomWaypointCfg};

/// Parameters for [`Rpgm`].
#[derive(Clone, Copy, Debug)]
pub struct RpgmCfg {
    /// Area the group leader roams in.
    pub bounds: Rect,
    /// Leader's speed bounds (m/s).
    pub min_speed: f64,
    /// Leader's maximum speed (m/s).
    pub max_speed: f64,
    /// Leader's maximum pause (s).
    pub max_pause: f64,
    /// Members stay within this radius of the leader (m).
    pub group_radius: f64,
    /// Seconds between member offset redraws.
    pub offset_interval: f64,
}

impl RpgmCfg {
    /// A walking team: leader at the paper's waypoint parameters, members
    /// within 10 m.
    pub fn team(bounds: Rect) -> Self {
        RpgmCfg {
            bounds,
            min_speed: 0.1,
            max_speed: 1.0,
            max_pause: 100.0,
            group_radius: 10.0,
            offset_interval: 20.0,
        }
    }

    fn validate(&self) {
        assert!(
            self.group_radius >= 0.0,
            "group radius must be non-negative"
        );
        assert!(self.offset_interval > 0.0);
        assert!(self.min_speed > 0.0 && self.max_speed >= self.min_speed);
    }
}

/// One member of an RPGM group.
#[derive(Clone, Debug)]
pub struct Rpgm {
    cfg: RpgmCfg,
    /// This member's replica of the group-leader trajectory.
    leader: RandomWaypoint,
    /// RNG advancing the leader replica — identical for all members of the
    /// group, so the replicas stay in lockstep.
    leader_rng: Rng,
    /// Offset interpolation: from `prev_offset` at `offset_start` to
    /// `next_offset` at `offset_end`.
    prev_offset: Vector,
    next_offset: Vector,
    offset_start: SimTime,
    offset_end: SimTime,
}

impl Rpgm {
    /// A member of the group identified by `group_seed`. All members
    /// constructed with the same `cfg` and `group_seed` share one leader
    /// trajectory; `member_rng` individualizes the in-group wandering.
    pub fn new(cfg: RpgmCfg, group_seed: u64, member_rng: &mut Rng) -> Self {
        cfg.validate();
        let mut leader_rng = Rng::new(group_seed);
        let leader = RandomWaypoint::random_start(
            RandomWaypointCfg {
                bounds: cfg.bounds,
                min_speed: cfg.min_speed,
                max_speed: cfg.max_speed,
                max_pause: cfg.max_pause,
            },
            &mut leader_rng,
        );
        let first = disc_offset(cfg.group_radius, member_rng);
        let second = disc_offset(cfg.group_radius, member_rng);
        Rpgm {
            cfg,
            leader,
            leader_rng,
            prev_offset: first,
            next_offset: second,
            offset_start: SimTime::ZERO,
            offset_end: SimTime::ZERO + SimDuration::from_secs_f64(cfg.offset_interval),
        }
    }

    fn offset_at(&self, t: SimTime) -> Vector {
        let t = t.clamp(self.offset_start, self.offset_end);
        let span = (self.offset_end - self.offset_start).as_secs_f64();
        if span <= 0.0 {
            return self.next_offset;
        }
        let frac = (t - self.offset_start).as_secs_f64() / span;
        Vector::new(
            self.prev_offset.dx + (self.next_offset.dx - self.prev_offset.dx) * frac,
            self.prev_offset.dy + (self.next_offset.dy - self.prev_offset.dy) * frac,
        )
    }
}

/// Uniform point in a disc of radius `r` (by rejection-free polar sampling).
fn disc_offset(r: f64, rng: &mut Rng) -> Vector {
    if r <= 0.0 {
        return Vector::ZERO;
    }
    let radius = r * rng.f64().sqrt();
    Vector::from_angle(rng.range_f64(0.0, std::f64::consts::TAU)) * radius
}

impl Mobility for Rpgm {
    fn position(&self, t: SimTime) -> Point {
        self.cfg
            .bounds
            .clamp(self.leader.position(t) + self.offset_at(t))
    }

    fn epoch_end(&self) -> SimTime {
        self.leader.epoch_end().min(self.offset_end)
    }

    fn advance(&mut self, now: SimTime, rng: &mut Rng) {
        if self.leader.epoch_end() <= now {
            // Advance the leader replica with the *shared* stream so every
            // member's replica stays identical.
            self.leader.advance(now, &mut self.leader_rng);
        }
        if self.offset_end <= now {
            self.prev_offset = self.offset_at(now);
            self.next_offset = disc_offset(self.cfg.group_radius, rng);
            self.offset_start = now;
            self.offset_end = now + SimDuration::from_secs_f64(self.cfg.offset_interval);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RpgmCfg {
        RpgmCfg::team(Rect::sized(100.0, 100.0))
    }

    fn drive(m: &mut Rpgm, rng: &mut Rng, until: SimTime) {
        while m.epoch_end() < until {
            let e = m.epoch_end();
            m.advance(e, rng);
        }
    }

    #[test]
    fn members_of_one_group_stay_within_two_radii() {
        let mut rng_a = Rng::new(1);
        let mut rng_b = Rng::new(2);
        let mut a = Rpgm::new(cfg(), 77, &mut rng_a);
        let mut b = Rpgm::new(cfg(), 77, &mut rng_b);
        for step in 1..200u64 {
            let t = SimTime::from_secs(step * 10);
            drive(&mut a, &mut rng_a, t);
            drive(&mut b, &mut rng_b, t);
            let d = a.position(t).distance(b.position(t));
            // Two members can be at most 2 * radius apart (plus boundary
            // clamping slack, which only pulls them closer).
            assert!(
                d <= 2.0 * cfg().group_radius + 1e-9,
                "group dispersed: {d} m at {t}"
            );
        }
    }

    #[test]
    fn different_groups_diverge() {
        let mut rng_a = Rng::new(1);
        let mut rng_b = Rng::new(1);
        let mut a = Rpgm::new(cfg(), 10, &mut rng_a);
        let mut b = Rpgm::new(cfg(), 20, &mut rng_b);
        let t = SimTime::from_secs(500);
        drive(&mut a, &mut rng_a, t);
        drive(&mut b, &mut rng_b, t);
        // Statistically the two leaders are far apart by now.
        assert!(
            a.position(t).distance(b.position(t)) > 2.0 * cfg().group_radius,
            "distinct groups should not stay huddled"
        );
    }

    #[test]
    fn stays_in_bounds() {
        let mut rng = Rng::new(3);
        let bounds = Rect::sized(100.0, 100.0);
        let mut m = Rpgm::new(cfg(), 5, &mut rng);
        for step in 1..500u64 {
            let t = SimTime::from_secs(step * 5);
            drive(&mut m, &mut rng, t);
            assert!(bounds.contains(m.position(t)));
        }
    }

    #[test]
    fn trajectory_is_continuous() {
        let mut rng = Rng::new(4);
        let mut m = Rpgm::new(cfg(), 6, &mut rng);
        for _ in 0..300 {
            let e = m.epoch_end();
            let before = m.position(e);
            m.advance(e, &mut rng);
            let after = m.position(e);
            assert!(
                before.distance(after) < 1e-6,
                "offset interpolation must not teleport: {before:?} -> {after:?}"
            );
        }
    }

    #[test]
    fn zero_radius_pins_members_to_leader() {
        let c = RpgmCfg {
            group_radius: 0.0,
            ..cfg()
        };
        let mut rng_a = Rng::new(1);
        let mut rng_b = Rng::new(99);
        let mut a = Rpgm::new(c, 7, &mut rng_a);
        let mut b = Rpgm::new(c, 7, &mut rng_b);
        let t = SimTime::from_secs(300);
        drive(&mut a, &mut rng_a, t);
        drive(&mut b, &mut rng_b, t);
        assert!(a.position(t).distance(b.position(t)) < 1e-9);
    }
}
