//! Random Walk (random direction) mobility with wall reflection.
//!
//! Each leg draws a uniform heading and speed and walks for a bounded
//! duration. If the straight step would leave the area, the leg is truncated
//! at the wall and the next leg starts with the reflected heading, keeping
//! every epoch a straight line (so `position(t)` stays closed-form).

use manet_des::{Rng, SimDuration, SimTime};
use manet_geom::{Point, Rect, Vector};

use crate::model::Mobility;

/// Parameters for [`RandomWalk`].
#[derive(Clone, Copy, Debug)]
pub struct RandomWalkCfg {
    /// Simulation area.
    pub bounds: Rect,
    /// Lower speed bound in m/s (strictly positive).
    pub min_speed: f64,
    /// Upper speed bound in m/s.
    pub max_speed: f64,
    /// Duration of a full leg in seconds (legs hitting a wall are shorter).
    pub leg_duration: f64,
}

impl RandomWalkCfg {
    /// A walking-pace configuration comparable to the paper's waypoint model.
    pub fn walking(bounds: Rect) -> Self {
        RandomWalkCfg {
            bounds,
            min_speed: 0.1,
            max_speed: 1.0,
            leg_duration: 60.0,
        }
    }

    fn validate(&self) {
        assert!(self.min_speed > 0.0 && self.max_speed >= self.min_speed);
        assert!(self.leg_duration > 0.0);
    }
}

/// Random-walk state for a single node.
#[derive(Clone, Debug)]
pub struct RandomWalk {
    cfg: RandomWalkCfg,
    from: Point,
    velocity: Vector,
    start: SimTime,
    end: SimTime,
    /// Heading to reuse for the next leg when this one ended at a wall
    /// (already reflected); `None` means draw a fresh heading.
    reflected: Option<Vector>,
}

impl RandomWalk {
    /// Start at `start_pos` with a random first leg.
    pub fn new(cfg: RandomWalkCfg, start_pos: Point, rng: &mut Rng) -> Self {
        cfg.validate();
        let mut walk = RandomWalk {
            cfg,
            from: cfg.bounds.clamp(start_pos),
            velocity: Vector::ZERO,
            start: SimTime::ZERO,
            end: SimTime::ZERO,
            reflected: None,
        };
        walk.draw_leg(SimTime::ZERO, rng);
        walk
    }

    /// Uniformly random starting position inside `bounds`.
    pub fn random_start(cfg: RandomWalkCfg, rng: &mut Rng) -> Self {
        let p = Point::new(
            rng.range_f64(cfg.bounds.x0, cfg.bounds.x1),
            rng.range_f64(cfg.bounds.y0, cfg.bounds.y1),
        );
        Self::new(cfg, p, rng)
    }

    fn draw_leg(&mut self, now: SimTime, rng: &mut Rng) {
        let velocity = match self.reflected.take() {
            Some(v) => v,
            None => {
                let heading = rng.range_f64(0.0, std::f64::consts::TAU);
                let speed = rng.range_f64(self.cfg.min_speed, self.cfg.max_speed);
                Vector::from_angle(heading) * speed
            }
        };
        // Truncate the leg at the first wall hit so the epoch stays linear.
        let full = self.cfg.leg_duration;
        let hit = wall_hit(self.cfg.bounds, self.from, velocity);
        let dur = hit.map_or(full, |(h, _, _)| h.min(full)).max(1e-3);
        self.velocity = velocity;
        self.start = now;
        self.end = now + SimDuration::from_secs_f64(dur);
        if let Some((h, sx, sy)) = hit {
            if h <= full {
                // Leg ends on the wall: pre-compute the reflected heading.
                self.reflected = Some(Vector::new(velocity.dx * sx, velocity.dy * sy));
            }
        }
    }
}

/// Time in seconds until `(from + v*t)` first crosses a wall, if ever.
pub(crate) fn time_to_wall(bounds: Rect, from: Point, v: Vector) -> Option<f64> {
    let mut t = f64::INFINITY;
    if v.dx > 0.0 {
        t = t.min((bounds.x1 - from.x) / v.dx);
    } else if v.dx < 0.0 {
        t = t.min((bounds.x0 - from.x) / v.dx);
    }
    if v.dy > 0.0 {
        t = t.min((bounds.y1 - from.y) / v.dy);
    } else if v.dy < 0.0 {
        t = t.min((bounds.y0 - from.y) / v.dy);
    }
    if t.is_finite() {
        Some(t.max(0.0))
    } else {
        None
    }
}

/// First wall hit of the ray `from + v*t`: time and the axis flip signs
/// `(sx, sy)` describing the reflection there. `None` if `v` is zero.
///
/// Computed from per-axis exit times rather than the end position, so it is
/// immune to clock-tick rounding of the leg duration.
fn wall_hit(bounds: Rect, from: Point, v: Vector) -> Option<(f64, f64, f64)> {
    let tx = if v.dx > 0.0 {
        Some((bounds.x1 - from.x) / v.dx)
    } else if v.dx < 0.0 {
        Some((bounds.x0 - from.x) / v.dx)
    } else {
        None
    };
    let ty = if v.dy > 0.0 {
        Some((bounds.y1 - from.y) / v.dy)
    } else if v.dy < 0.0 {
        Some((bounds.y0 - from.y) / v.dy)
    } else {
        None
    };
    let hit = match (tx, ty) {
        (None, None) => return None,
        (Some(t), None) | (None, Some(t)) => t,
        (Some(a), Some(b)) => a.min(b),
    }
    .max(0.0);
    // Flip every axis whose exit time coincides with the first hit (both at
    // a corner). Tolerance absorbs f64 noise in the division.
    let tol = 1e-9 * (1.0 + hit);
    let sx = if tx.is_some_and(|t| t <= hit + tol) {
        -1.0
    } else {
        1.0
    };
    let sy = if ty.is_some_and(|t| t <= hit + tol) {
        -1.0
    } else {
        1.0
    };
    Some((hit, sx, sy))
}

impl Mobility for RandomWalk {
    fn position(&self, t: SimTime) -> Point {
        let t = t.clamp(self.start, self.end);
        let dt = (t - self.start).as_secs_f64();
        self.cfg.bounds.clamp(self.from + self.velocity * dt)
    }

    fn epoch_end(&self) -> SimTime {
        self.end
    }

    fn advance(&mut self, now: SimTime, rng: &mut Rng) {
        self.from = self.position(now);
        self.draw_leg(now, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_des::Rng;

    fn cfg() -> RandomWalkCfg {
        RandomWalkCfg::walking(Rect::sized(50.0, 50.0))
    }

    #[test]
    fn stays_in_bounds_over_many_legs() {
        let mut rng = Rng::new(1);
        let bounds = Rect::sized(50.0, 50.0);
        let mut m = RandomWalk::random_start(cfg(), &mut rng);
        for _ in 0..1000 {
            let end = m.epoch_end();
            let mid = SimTime::from_ticks((m.start.ticks() + end.ticks()) / 2);
            assert!(bounds.contains(m.position(mid)));
            assert!(bounds.contains(m.position(end)));
            m.advance(end, &mut rng);
        }
    }

    #[test]
    fn continuous_across_reflection() {
        let mut rng = Rng::new(2);
        let mut m = RandomWalk::random_start(cfg(), &mut rng);
        for _ in 0..500 {
            let end = m.epoch_end();
            let before = m.position(end);
            m.advance(end, &mut rng);
            let after = m.position(end);
            assert!(before.distance(after) < 1e-6);
        }
    }

    #[test]
    fn reflection_reverses_wallward_component() {
        let mut rng = Rng::new(3);
        let c = RandomWalkCfg {
            bounds: Rect::sized(10.0, 10.0),
            min_speed: 1.0,
            max_speed: 1.0,
            leg_duration: 1000.0, // guarantees a wall hit
        };
        let mut m = RandomWalk::new(c, Point::new(5.0, 5.0), &mut rng);
        let v_before = m.velocity;
        let end = m.epoch_end();
        m.advance(end, &mut rng);
        let v_after = m.velocity;
        // Speed preserved, at least one component flipped.
        assert!((v_before.length() - v_after.length()).abs() < 1e-9);
        assert!(
            (v_before.dx + v_after.dx).abs() < 1e-9 || (v_before.dy + v_after.dy).abs() < 1e-9,
            "no component was reflected: {v_before:?} -> {v_after:?}"
        );
    }

    #[test]
    fn epoch_ends_strictly_advance() {
        let mut rng = Rng::new(4);
        let mut m = RandomWalk::random_start(cfg(), &mut rng);
        let mut last = SimTime::ZERO;
        for _ in 0..300 {
            let end = m.epoch_end();
            assert!(end > last);
            m.advance(end, &mut rng);
            last = end;
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut rng = Rng::new(seed);
            let mut m = RandomWalk::random_start(cfg(), &mut rng);
            for _ in 0..50 {
                let e = m.epoch_end();
                m.advance(e, &mut rng);
            }
            let p = m.position(m.epoch_end());
            (p.x, p.y)
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
