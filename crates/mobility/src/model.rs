//! The mobility contract shared by all models.

use manet_des::{Rng, SimTime};
use manet_geom::Point;

use crate::gauss_markov::GaussMarkov;
use crate::rpgm::Rpgm;
use crate::stationary::Stationary;
use crate::walk::RandomWalk;
use crate::waypoint::RandomWaypoint;

/// A piecewise-linear trajectory.
///
/// Invariants every implementation upholds:
/// * `position(t)` is defined for any `t` in `[epoch_start, epoch_end]` and
///   stays inside the model's bounds;
/// * `advance(rng)` moves to the next epoch, continuous with the previous
///   one (no teleporting);
/// * `epoch_end()` is strictly after `epoch_start()` unless the model is
///   stationary (where it is `SimTime::MAX`).
pub trait Mobility {
    /// Position at time `t`. `t` is clamped to the current epoch, so querying
    /// slightly outside it (e.g. an event that raced an epoch change) is safe.
    fn position(&self, t: SimTime) -> Point;

    /// When the current epoch ends and [`advance`](Self::advance) must be called.
    fn epoch_end(&self) -> SimTime;

    /// Draw the next epoch. `now` must be the current `epoch_end()`.
    fn advance(&mut self, now: SimTime, rng: &mut Rng);
}

/// Closed enum over the provided models, so node state stays `Clone` and
/// allocation-free (no `Box<dyn>`, and the world can store nodes in a `Vec`).
#[derive(Clone, Debug)]
pub enum AnyMobility {
    Waypoint(RandomWaypoint),
    Walk(RandomWalk),
    GaussMarkov(GaussMarkov),
    Rpgm(Rpgm),
    Stationary(Stationary),
}

impl Mobility for AnyMobility {
    fn position(&self, t: SimTime) -> Point {
        match self {
            AnyMobility::Waypoint(m) => m.position(t),
            AnyMobility::Walk(m) => m.position(t),
            AnyMobility::GaussMarkov(m) => m.position(t),
            AnyMobility::Rpgm(m) => m.position(t),
            AnyMobility::Stationary(m) => m.position(t),
        }
    }

    fn epoch_end(&self) -> SimTime {
        match self {
            AnyMobility::Waypoint(m) => m.epoch_end(),
            AnyMobility::Walk(m) => m.epoch_end(),
            AnyMobility::GaussMarkov(m) => m.epoch_end(),
            AnyMobility::Rpgm(m) => m.epoch_end(),
            AnyMobility::Stationary(m) => m.epoch_end(),
        }
    }

    fn advance(&mut self, now: SimTime, rng: &mut Rng) {
        match self {
            AnyMobility::Waypoint(m) => m.advance(now, rng),
            AnyMobility::Walk(m) => m.advance(now, rng),
            AnyMobility::GaussMarkov(m) => m.advance(now, rng),
            AnyMobility::Rpgm(m) => m.advance(now, rng),
            AnyMobility::Stationary(m) => m.advance(now, rng),
        }
    }
}

impl From<RandomWaypoint> for AnyMobility {
    fn from(m: RandomWaypoint) -> Self {
        AnyMobility::Waypoint(m)
    }
}
impl From<RandomWalk> for AnyMobility {
    fn from(m: RandomWalk) -> Self {
        AnyMobility::Walk(m)
    }
}
impl From<GaussMarkov> for AnyMobility {
    fn from(m: GaussMarkov) -> Self {
        AnyMobility::GaussMarkov(m)
    }
}
impl From<Rpgm> for AnyMobility {
    fn from(m: Rpgm) -> Self {
        AnyMobility::Rpgm(m)
    }
}
impl From<Stationary> for AnyMobility {
    fn from(m: Stationary) -> Self {
        AnyMobility::Stationary(m)
    }
}
