//! # manet-mobility — analytic mobility models
//!
//! Node movement for the MANET substrate. Every model exposes the same
//! contract ([`Mobility`]): a *piecewise-linear trajectory* made of epochs.
//! Within an epoch the position is a closed-form function of time, so the
//! simulator never schedules per-tick position updates — it only wakes a node
//! when its epoch ends ([`Mobility::epoch_end`]) to draw the next one.
//!
//! Models:
//! * [`RandomWaypoint`] — the paper's model: pick a uniform destination,
//!   travel at a uniform speed, pause, repeat (Camp et al.'s survey, cited by
//!   the paper as "Random Way").
//! * [`RandomWalk`] — uniform heading + speed for a bounded leg, reflecting
//!   off walls; used in the future-work mobility sweeps.
//! * [`GaussMarkov`] — temporally correlated speed/heading (AR(1)).
//! * [`Rpgm`] — Reference Point Group Mobility: teams wandering around a
//!   shared (replicated, lock-free) group leader.
//! * [`Stationary`] — fixed nodes (sanity scenarios and unit tests).

pub mod gauss_markov;
pub mod model;
pub mod rpgm;
pub mod stationary;
pub mod walk;
pub mod waypoint;

pub use gauss_markov::{GaussMarkov, GaussMarkovCfg};
pub use model::{AnyMobility, Mobility};
pub use rpgm::{Rpgm, RpgmCfg};
pub use stationary::Stationary;
pub use walk::{RandomWalk, RandomWalkCfg};
pub use waypoint::{RandomWaypoint, RandomWaypointCfg};
