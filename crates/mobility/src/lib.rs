//! # manet-mobility — analytic mobility models
//!
//! Node movement for the MANET substrate. Every model exposes the same
//! contract ([`Mobility`]): a *piecewise-linear trajectory* made of epochs.
//! Within an epoch the position is a closed-form function of time, so the
//! simulator never schedules per-tick position updates — it only wakes a node
//! when its epoch ends ([`Mobility::epoch_end`]) to draw the next one.
//!
//! Models:
//! * [`RandomWaypoint`] — the paper's model: pick a uniform destination,
//!   travel at a uniform speed, pause, repeat (Camp et al.'s survey, cited by
//!   the paper as "Random Way").
//! * [`RandomWalk`] — uniform heading + speed for a bounded leg, reflecting
//!   off walls; used in the future-work mobility sweeps.
//! * [`GaussMarkov`] — temporally correlated speed/heading (AR(1)).
//! * [`Rpgm`] — Reference Point Group Mobility: teams wandering around a
//!   shared (replicated, lock-free) group leader.
//! * [`Stationary`] — fixed nodes (sanity scenarios and unit tests).

pub mod gauss_markov;
pub mod model;
pub mod rpgm;
pub mod stationary;
pub mod walk;
pub mod waypoint;

pub use gauss_markov::{GaussMarkov, GaussMarkovCfg};
pub use model::{AnyMobility, Mobility};
pub use rpgm::{Rpgm, RpgmCfg};
pub use stationary::Stationary;
pub use walk::{RandomWalk, RandomWalkCfg};
pub use waypoint::{RandomWaypoint, RandomWaypointCfg};

#[cfg(test)]
mod properties {
    //! Cross-model contract properties: for *any* seed, every model keeps
    //! its node inside the area and replays bit-identically from the seed.

    use manet_des::{Rng, SimTime};
    use manet_geom::{Point, Rect};
    use manet_testkit::{any_u64, prop_assert, prop_assert_eq, properties};

    use super::*;

    const SIDE: f64 = 100.0;

    /// Build one instance of every model from one seed, the way the
    /// simulator does: per-model RNG streams forked off a master.
    fn all_models(seed: u64) -> Vec<(&'static str, AnyMobility)> {
        let master = Rng::new(seed);
        let bounds = Rect::sized(SIDE, SIDE);
        let mut start_rng = master.fork(0);
        let mut start = || {
            Point::new(
                start_rng.range_f64(0.0, SIDE),
                start_rng.range_f64(0.0, SIDE),
            )
        };
        vec![
            (
                "waypoint",
                RandomWaypoint::new(
                    RandomWaypointCfg {
                        bounds,
                        min_speed: 0.1,
                        max_speed: 1.0,
                        max_pause: 100.0,
                    },
                    start(),
                    &mut master.fork(1),
                )
                .into(),
            ),
            (
                "walk",
                RandomWalk::new(
                    RandomWalkCfg {
                        bounds,
                        min_speed: 0.1,
                        max_speed: 1.0,
                        leg_duration: 60.0,
                    },
                    start(),
                    &mut master.fork(2),
                )
                .into(),
            ),
            (
                "gauss-markov",
                GaussMarkov::new(
                    GaussMarkovCfg::walking(bounds),
                    start(),
                    &mut master.fork(3),
                )
                .into(),
            ),
            (
                "rpgm",
                Rpgm::new(
                    RpgmCfg {
                        bounds,
                        min_speed: 0.1,
                        max_speed: 1.0,
                        max_pause: 100.0,
                        group_radius: 10.0,
                        offset_interval: 20.0,
                    },
                    master.fork(4).next_u64(),
                    &mut master.fork(5),
                )
                .into(),
            ),
            ("stationary", Stationary::new(start()).into()),
        ]
    }

    /// Drive a model through epochs up to `horizon_secs`, sampling five
    /// positions per epoch.
    fn sample_trajectory(model: &mut AnyMobility, rng: &mut Rng, horizon_secs: u64) -> Vec<Point> {
        let horizon = SimTime::from_secs(horizon_secs);
        let mut out = Vec::new();
        let mut from = SimTime::ZERO;
        loop {
            let end = model.epoch_end();
            let to = end.min(horizon);
            let span = to.ticks().saturating_sub(from.ticks());
            for k in 0..=4u64 {
                let at = SimTime::from_ticks(from.ticks() + span / 4 * k);
                out.push(model.position(at));
            }
            if end >= horizon || end == SimTime::MAX {
                return out;
            }
            model.advance(end, rng);
            from = end;
        }
    }

    properties! {
        config = manet_testkit::Config::cases(48);

        /// No model ever leaves the configured area, at any sampled instant
        /// of any epoch.
        fn every_model_stays_in_area(seed in any_u64()) {
            for (name, mut model) in all_models(seed) {
                let mut rng = Rng::new(seed ^ 0xDECADE);
                for p in sample_trajectory(&mut model, &mut rng, 2_000) {
                    prop_assert!(
                        (-1e-9..=SIDE + 1e-9).contains(&p.x)
                            && (-1e-9..=SIDE + 1e-9).contains(&p.y),
                        "{} left the area: {:?}",
                        name,
                        p
                    );
                }
            }
        }

        /// The same seed replays the exact same trajectory, bit for bit.
        fn trajectories_are_bit_reproducible(seed in any_u64()) {
            let run = |seed: u64| -> Vec<(&'static str, Vec<Point>)> {
                all_models(seed)
                    .into_iter()
                    .map(|(name, mut m)| {
                        let mut rng = Rng::new(seed ^ 0xF00D);
                        (name, sample_trajectory(&mut m, &mut rng, 1_000))
                    })
                    .collect()
            };
            prop_assert_eq!(run(seed), run(seed));
        }

        /// Different seeds genuinely move the moving models differently.
        fn seeds_matter_for_moving_models(seed in any_u64()) {
            let other = seed.wrapping_add(1);
            for ((name, mut a), (_, mut b)) in
                all_models(seed).into_iter().zip(all_models(other))
            {
                if name == "stationary" {
                    continue;
                }
                let mut ra = Rng::new(seed ^ 0xBEEF);
                let mut rb = Rng::new(other ^ 0xBEEF);
                let ta = sample_trajectory(&mut a, &mut ra, 1_000);
                let tb = sample_trajectory(&mut b, &mut rb, 1_000);
                prop_assert!(ta != tb, "{} ignored its seed", name);
            }
        }
    }

    #[test]
    fn stationary_never_schedules_an_epoch() {
        let m = Stationary::new(Point::new(5.0, 5.0));
        assert_eq!(m.epoch_end(), SimTime::MAX);
        assert_eq!(
            m.position(SimTime::from_secs(1_000_000)),
            Point::new(5.0, 5.0)
        );
    }
}
