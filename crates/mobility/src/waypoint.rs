//! Random Waypoint — the mobility model of the paper's evaluation.
//!
//! Each node alternates **move** legs and **pause** periods: pick a uniformly
//! random destination in the area, travel to it in a straight line at a speed
//! drawn uniformly from `[min_speed, max_speed]`, then pause for a time drawn
//! uniformly from `[0, max_pause]`. The paper uses `max_speed = 1.0 m/s`
//! (human walking) and `max_pause = 100 s`.
//!
//! A small positive `min_speed` avoids the well-known Random-Waypoint decay
//! pathology where near-zero speed draws strand nodes for most of the run.

use manet_des::{Rng, SimDuration, SimTime};
use manet_geom::{Point, Rect};

use crate::model::Mobility;

/// Parameters for [`RandomWaypoint`].
#[derive(Clone, Copy, Debug)]
pub struct RandomWaypointCfg {
    /// Simulation area the node roams in.
    pub bounds: Rect,
    /// Lower speed bound in m/s (strictly positive).
    pub min_speed: f64,
    /// Upper speed bound in m/s (the paper: 1.0).
    pub max_speed: f64,
    /// Maximum pause between legs in seconds (the paper: 100.0).
    pub max_pause: f64,
}

impl RandomWaypointCfg {
    /// The paper's human-walking configuration over a given area.
    pub fn paper(bounds: Rect) -> Self {
        RandomWaypointCfg {
            bounds,
            min_speed: 0.1,
            max_speed: 1.0,
            max_pause: 100.0,
        }
    }

    fn validate(&self) {
        assert!(
            self.min_speed > 0.0 && self.max_speed >= self.min_speed,
            "speeds must satisfy 0 < min <= max"
        );
        assert!(self.max_pause >= 0.0, "max_pause must be non-negative");
    }
}

#[derive(Clone, Copy, Debug)]
enum Epoch {
    Moving {
        from: Point,
        to: Point,
        start: SimTime,
        arrive: SimTime,
    },
    Paused {
        at: Point,
        until: SimTime,
    },
}

/// Random Waypoint state for a single node.
#[derive(Clone, Debug)]
pub struct RandomWaypoint {
    cfg: RandomWaypointCfg,
    epoch: Epoch,
}

impl RandomWaypoint {
    /// Start at `start_pos` with an initial pause drawn from `[0, max_pause]`
    /// (so the population does not march in phase at t = 0).
    pub fn new(cfg: RandomWaypointCfg, start_pos: Point, rng: &mut Rng) -> Self {
        cfg.validate();
        let at = cfg.bounds.clamp(start_pos);
        let until = SimTime::ZERO + SimDuration::from_secs_f64(rng.range_f64(0.0, cfg.max_pause));
        RandomWaypoint {
            cfg,
            epoch: Epoch::Paused { at, until },
        }
    }

    /// Uniformly random starting position inside `bounds`.
    pub fn random_start(cfg: RandomWaypointCfg, rng: &mut Rng) -> Self {
        let p = Point::new(
            rng.range_f64(cfg.bounds.x0, cfg.bounds.x1),
            rng.range_f64(cfg.bounds.y0, cfg.bounds.y1),
        );
        Self::new(cfg, p, rng)
    }

    /// True while in a pause period (exposed for tests and telemetry).
    pub fn is_paused(&self) -> bool {
        matches!(self.epoch, Epoch::Paused { .. })
    }
}

impl Mobility for RandomWaypoint {
    fn position(&self, t: SimTime) -> Point {
        match self.epoch {
            Epoch::Paused { at, .. } => at,
            Epoch::Moving {
                from,
                to,
                start,
                arrive,
            } => {
                if t <= start {
                    from
                } else if t >= arrive {
                    to
                } else {
                    let total = (arrive - start).as_secs_f64();
                    let done = (t - start).as_secs_f64();
                    from.lerp(to, done / total)
                }
            }
        }
    }

    fn epoch_end(&self) -> SimTime {
        match self.epoch {
            Epoch::Paused { until, .. } => until,
            Epoch::Moving { arrive, .. } => arrive,
        }
    }

    fn advance(&mut self, now: SimTime, rng: &mut Rng) {
        let here = self.position(now);
        self.epoch = match self.epoch {
            Epoch::Paused { .. } => {
                let to = Point::new(
                    rng.range_f64(self.cfg.bounds.x0, self.cfg.bounds.x1),
                    rng.range_f64(self.cfg.bounds.y0, self.cfg.bounds.y1),
                );
                let speed = rng.range_f64(self.cfg.min_speed, self.cfg.max_speed);
                let dist = here.distance(to);
                let travel = SimDuration::from_secs_f64(dist / speed);
                Epoch::Moving {
                    from: here,
                    to,
                    start: now,
                    // Guard against a zero-length leg producing a zero-length
                    // epoch (which would spin the event loop).
                    arrive: now + travel.max(SimDuration::from_millis(1)),
                }
            }
            Epoch::Moving { .. } => {
                let pause = SimDuration::from_secs_f64(rng.range_f64(0.0, self.cfg.max_pause));
                Epoch::Paused {
                    at: here,
                    until: now + pause.max(SimDuration::from_millis(1)),
                }
            }
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_des::Rng;

    fn cfg() -> RandomWaypointCfg {
        RandomWaypointCfg::paper(Rect::sized(100.0, 100.0))
    }

    fn advance_epochs(m: &mut RandomWaypoint, rng: &mut Rng, n: usize) {
        for _ in 0..n {
            let end = m.epoch_end();
            m.advance(end, rng);
        }
    }

    #[test]
    fn starts_paused_at_start_position() {
        let mut rng = Rng::new(1);
        let m = RandomWaypoint::new(cfg(), Point::new(10.0, 20.0), &mut rng);
        assert!(m.is_paused());
        assert_eq!(m.position(SimTime::ZERO), Point::new(10.0, 20.0));
    }

    #[test]
    fn alternates_pause_and_move() {
        let mut rng = Rng::new(2);
        let mut m = RandomWaypoint::random_start(cfg(), &mut rng);
        assert!(m.is_paused());
        advance_epochs(&mut m, &mut rng, 1);
        assert!(!m.is_paused());
        advance_epochs(&mut m, &mut rng, 1);
        assert!(m.is_paused());
    }

    #[test]
    fn trajectory_is_continuous_across_epochs() {
        let mut rng = Rng::new(3);
        let mut m = RandomWaypoint::random_start(cfg(), &mut rng);
        for _ in 0..200 {
            let end = m.epoch_end();
            let before = m.position(end);
            m.advance(end, &mut rng);
            let after = m.position(end);
            assert!(
                before.distance(after) < 1e-9,
                "teleport at epoch change: {before:?} -> {after:?}"
            );
        }
    }

    #[test]
    fn positions_stay_in_bounds() {
        let mut rng = Rng::new(4);
        let bounds = Rect::sized(100.0, 100.0);
        let mut m = RandomWaypoint::random_start(cfg(), &mut rng);
        for _ in 0..100 {
            let start = m.position(m.epoch_end());
            let end = m.epoch_end();
            // Sample within the epoch.
            for k in 0..=4 {
                let t = SimTime::from_ticks(end.ticks().saturating_sub((4 - k) * end.ticks() / 8));
                let p = m.position(t);
                assert!(
                    bounds.contains(p),
                    "{p:?} outside at sample {k} from {start:?}"
                );
            }
            m.advance(end, &mut rng);
        }
    }

    #[test]
    fn speed_respects_limits_during_move() {
        let mut rng = Rng::new(5);
        let c = cfg();
        let mut m = RandomWaypoint::random_start(c, &mut rng);
        for _ in 0..50 {
            advance_epochs(&mut m, &mut rng, 1);
            if let Epoch::Moving {
                from,
                to,
                start,
                arrive,
            } = m.epoch
            {
                let dist = from.distance(to);
                let dt = (arrive - start).as_secs_f64();
                if dist > 0.1 {
                    let speed = dist / dt;
                    assert!(
                        speed <= c.max_speed * 1.01 && speed >= c.min_speed * 0.99,
                        "speed {speed} outside [{}, {}]",
                        c.min_speed,
                        c.max_speed
                    );
                }
            }
        }
    }

    #[test]
    fn position_clamps_outside_epoch() {
        let mut rng = Rng::new(6);
        let mut m = RandomWaypoint::new(cfg(), Point::new(1.0, 1.0), &mut rng);
        advance_epochs(&mut m, &mut rng, 1); // now moving
        if let Epoch::Moving {
            from, to, arrive, ..
        } = m.epoch
        {
            assert_eq!(m.position(SimTime::ZERO), from);
            assert_eq!(
                m.position(arrive + manet_des::SimDuration::from_secs(10)),
                to
            );
        } else {
            panic!("expected moving epoch");
        }
    }

    #[test]
    fn epochs_never_have_zero_length() {
        let mut rng = Rng::new(7);
        let mut m = RandomWaypoint::random_start(cfg(), &mut rng);
        let mut last = SimTime::ZERO;
        for _ in 0..500 {
            let end = m.epoch_end();
            assert!(end > last, "epoch end {end:?} not after {last:?}");
            m.advance(end, &mut rng);
            last = end;
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let c = cfg();
        let run = |seed| {
            let mut rng = Rng::new(seed);
            let mut m = RandomWaypoint::random_start(c, &mut rng);
            for _ in 0..20 {
                let e = m.epoch_end();
                m.advance(e, &mut rng);
            }
            let p = m.position(m.epoch_end());
            (p.x, p.y)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
