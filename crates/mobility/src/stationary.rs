//! Fixed nodes: the degenerate mobility model.
//!
//! Useful for sanity scenarios (protocols over a frozen topology), for
//! heterogeneous deployments with anchored infrastructure nodes, and for
//! making unit tests of upper layers independent of movement.

use manet_des::{Rng, SimTime};
use manet_geom::Point;

use crate::model::Mobility;

/// A node that never moves.
#[derive(Clone, Copy, Debug)]
pub struct Stationary {
    at: Point,
}

impl Stationary {
    /// Pin a node at `at`.
    pub const fn new(at: Point) -> Self {
        Stationary { at }
    }
}

impl Mobility for Stationary {
    fn position(&self, _t: SimTime) -> Point {
        self.at
    }

    /// Stationary nodes never need an epoch wake-up.
    fn epoch_end(&self) -> SimTime {
        SimTime::MAX
    }

    fn advance(&mut self, _now: SimTime, _rng: &mut Rng) {
        // Nothing changes; calling this is legal (the world treats MAX
        // epochs as "never schedule").
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_moves() {
        let p = Point::new(3.0, 4.0);
        let mut m = Stationary::new(p);
        assert_eq!(m.position(SimTime::ZERO), p);
        assert_eq!(m.position(SimTime::from_secs(3600)), p);
        assert_eq!(m.epoch_end(), SimTime::MAX);
        let mut rng = Rng::new(0);
        m.advance(SimTime::from_secs(1), &mut rng);
        assert_eq!(m.position(SimTime::from_secs(2)), p);
    }
}
