//! Component microbenches: the substrate hot paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use manet_aodv::testkit::{TestNet, TestPayload};
use manet_aodv::AodvCfg;
use manet_des::{EventQueue, Rng, SimTime};
use manet_geom::{Point, Rect, SpatialGrid};
use manet_graph::Graph;
use p2p_content::Catalog;

/// The event queue: schedule + pop churn at simulation-like sizes.
fn event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for n in [1_000u64, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("schedule_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = Rng::new(1);
                let mut q = EventQueue::new();
                for i in 0..n {
                    q.schedule(SimTime::from_ticks(rng.below(1_000_000_000)), i);
                }
                let mut acc = 0u64;
                while let Some((_, v)) = q.pop() {
                    acc = acc.wrapping_add(v);
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

/// The spatial grid: the radio's neighborhood query.
fn spatial_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("spatial_grid");
    for n in [50u32, 150, 1000] {
        let mut rng = Rng::new(2);
        let mut grid = SpatialGrid::new(Rect::sized(100.0, 100.0), 10.0);
        for k in 0..n {
            grid.upsert(
                k,
                Point::new(rng.range_f64(0.0, 100.0), rng.range_f64(0.0, 100.0)),
            );
        }
        group.bench_with_input(BenchmarkId::new("query_range_10m", n), &n, |b, _| {
            let mut out = Vec::new();
            let mut qr = Rng::new(3);
            b.iter(|| {
                let p = Point::new(qr.range_f64(0.0, 100.0), qr.range_f64(0.0, 100.0));
                grid.query_range(p, 10.0, u32::MAX, &mut out);
                black_box(out.len())
            })
        });
    }
    group.finish();
}

/// AODV: a full route discovery over a line topology.
fn aodv_discovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("aodv");
    for hops in [3usize, 8, 15] {
        group.bench_with_input(
            BenchmarkId::new("route_discovery_line", hops),
            &hops,
            |b, &hops| {
                b.iter(|| {
                    let mut net = TestNet::line(hops + 1, AodvCfg::default());
                    net.send(0, hops as u32, TestPayload(1));
                    net.step_until(
                        SimTime::from_secs(10),
                        manet_des::SimDuration::from_millis(100),
                    );
                    black_box(net.delivered.len())
                })
            },
        );
    }
    // The controlled broadcast the paper patched into ns-2.
    group.bench_function("controlled_flood_mesh20_ttl6", |b| {
        b.iter(|| {
            let mut net = TestNet::new(20, AodvCfg::default());
            for a in 0..20u32 {
                for bb in (a + 1)..20 {
                    if (a + bb) % 3 != 0 {
                        net.link(a, bb);
                    }
                }
            }
            net.flood(0, 6, TestPayload(9));
            black_box(net.flood_delivered.len())
        })
    });
    group.finish();
}

/// Zipf catalogue assignment and sampling.
fn catalog(c: &mut Criterion) {
    let mut group = c.benchmark_group("catalog");
    group.bench_function("assign_113_members", |b| {
        b.iter(|| {
            let mut rng = Rng::new(4);
            black_box(Catalog::default().assign(113, &mut rng))
        })
    });
    group.bench_function("zipf_sample", |b| {
        let cat = Catalog::default();
        let owned = std::collections::BTreeSet::new();
        let mut rng = Rng::new(5);
        b.iter(|| black_box(cat.sample_target(&owned, &mut rng)))
    });
    group.finish();
}

/// Graph analysis: BFS and clustering at overlay scale.
fn graph_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph");
    let mut rng = Rng::new(6);
    let n = 113u32;
    let mut g = Graph::new(n as usize);
    for _ in 0..(n * 3) {
        let a = rng.below(n as u64) as u32;
        let mut b = rng.below(n as u64) as u32;
        if a == b {
            b = (b + 1) % n;
        }
        g.add_edge(a, b);
    }
    group.bench_function("bfs_113", |b| {
        b.iter(|| black_box(g.bfs_distances(0)))
    });
    group.bench_function("clustering_113", |b| {
        b.iter(|| black_box(g.avg_clustering()))
    });
    group.bench_function("path_length_113", |b| {
        b.iter(|| black_box(g.characteristic_path_length()))
    });
    group.finish();
}

criterion_group!(
    benches,
    event_queue,
    spatial_grid,
    aodv_discovery,
    catalog,
    graph_analysis
);
criterion_main!(benches);
