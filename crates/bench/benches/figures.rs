//! One bench per paper figure.
//!
//! Each figure's data comes from simulating the four algorithms under
//! Table 2's scenario at 50 or 150 nodes; these benches time exactly that
//! pipeline at reduced clock (120 s simulated, single replication) so the
//! relative cost of the algorithms — the paper's whole point — is visible
//! in the timings. Figure *content* is produced by the `manet-sim`
//! binaries (`reproduce`, `fig_*`); see EXPERIMENTS.md.

use bench::{bench_scenario, run_once};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use p2p_core::AlgoKind;

/// Figs 5 & 6 (and their sibling figures share the same runs): the full
/// simulation pipeline per algorithm at the paper's two node counts.
fn fig_pipelines(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    for (figs, n_nodes, secs) in [("fig5_7_9_11_n50", 50usize, 120u64), ("fig6_8_10_12_n150", 150, 60)] {
        for algo in AlgoKind::ALL {
            group.bench_with_input(
                BenchmarkId::new(figs, algo.name()),
                &algo,
                |b, &algo| {
                    b.iter(|| run_once(black_box(bench_scenario(n_nodes, algo, secs)), 7))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig_pipelines);
criterion_main!(benches);
