//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Each ablation toggles one of the paper's four claimed improvements (or a
//! simulator design decision) and measures the simulated network's cost via
//! total frames transmitted — throughput of the simulation doubles as a
//! proxy for traffic volume, and the reported custom metric is the actual
//! frame count.

use bench::bench_scenario;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use manet_des::SimDuration;
use manet_sim::World;
use p2p_core::AlgoKind;

/// Improvement 4 (Fig 2): the doubling retry timer. Ablated by pinning
/// MAXTIMER to TIMER_INITIAL (no backoff).
fn timer_backoff(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_timer_backoff");
    group.sample_size(10);
    group.bench_function("with_backoff", |b| {
        b.iter(|| {
            let s = bench_scenario(40, AlgoKind::Regular, 120);
            black_box(World::new(s, 11).run().phy_total.frames_sent)
        })
    });
    group.bench_function("no_backoff", |b| {
        b.iter(|| {
            let mut s = bench_scenario(40, AlgoKind::Regular, 120);
            s.overlay.max_timer = s.overlay.timer_initial;
            black_box(World::new(s, 11).run().phy_total.frames_sent)
        })
    });
    group.finish();
}

/// Improvements 1-3 together are what separate Regular from Basic; the
/// head-to-head at identical load is the cleanest ablation of the bundle.
fn basic_vs_regular(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_discovery_style");
    group.sample_size(10);
    for algo in [AlgoKind::Basic, AlgoKind::Regular] {
        group.bench_function(algo.name(), |b| {
            b.iter(|| {
                let s = bench_scenario(40, algo, 120);
                black_box(World::new(s, 12).run().phy_total.frames_sent)
            })
        });
    }
    group.finish();
}

/// Simulator design choice: learning reverse routes from overheard floods
/// (our stand-in for ns-2's in-flood route setup). Off = every reply to a
/// discovery probe needs its own RREQ.
fn flood_route_learning(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_flood_route_learning");
    group.sample_size(10);
    for (name, learn) in [("on", true), ("off", false)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut s = bench_scenario(40, AlgoKind::Regular, 120);
                s.aodv.learn_routes_from_flood = learn;
                black_box(World::new(s, 13).run().phy_total.frames_sent)
            })
        });
    }
    group.finish();
}

/// Simulator design choice: analytic mobility positions refreshed at 1 s vs
/// 0.25 s — the accuracy/event-count trade recorded in DESIGN.md.
fn position_refresh(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_position_refresh");
    group.sample_size(10);
    for (name, secs_num, secs_den) in [("1s", 1u64, 1u64), ("250ms", 1, 4)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut s = bench_scenario(40, AlgoKind::Regular, 120);
                s.position_refresh = SimDuration::from_ticks(
                    manet_des::TICKS_PER_SECOND * secs_num / secs_den,
                );
                black_box(World::new(s, 14).run().events)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    timer_backoff,
    basic_vs_regular,
    flood_route_learning,
    position_refresh
);
criterion_main!(benches);
