//! City-scale throughput: the 10k-node run the single-core path cannot
//! sustain, sequential vs spatially sharded.
//!
//! One measurement pair at paper density (200 m² per node, 10 m radio —
//! the Table 2 neighborhood) on the Regular algorithm: a plain sequential
//! `World` and a `ShardedWorld` at `CITY_SHARDS` regions, each run once
//! and recorded into `BENCH_RESULTS.json` with events/sec. The workload
//! knobs shrink for CI smoke runs:
//!
//! ```text
//! CITY_NODES=10000 CITY_SECS=300 CITY_SHARDS=4 \
//!     cargo run --release -p bench --bin city_10k
//! ```
//!
//! Speedup is hardware-bound: the sharded driver runs one OS thread per
//! region, so a multiplier only appears with that many free cores. The
//! record keeps both absolute wall-clocks so the trajectory is honest on
//! any machine.

use bench::{bench_scenario, env_u64, Harness};
use manet_sim::{ShardedWorld, World};
use p2p_core::AlgoKind;

fn main() {
    let h = Harness::from_env("city");
    let nodes = env_u64("CITY_NODES", 10_000) as usize;
    let secs = env_u64("CITY_SECS", 300);
    let shards = env_u64("CITY_SHARDS", 4) as usize;
    let seed = env_u64("CITY_SEED", 7);
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Table 2 density, scaled: 50 nodes on 100 m × 100 m is 200 m² per
    // node; keep that as the city grows so radio neighborhoods (and thus
    // per-node event rates) stay paper-shaped.
    let mut scenario = bench_scenario(nodes, AlgoKind::Regular, secs);
    scenario.area_side = (nodes as f64 * 200.0).sqrt();
    scenario.validate();

    h.time_meta(
        &format!("city/sequential/{nodes}n_{secs}s_regular"),
        1,
        || World::new(scenario.clone(), seed).run(),
        |r| {
            vec![
                ("nodes".into(), nodes as f64),
                ("sim_secs".into(), secs as f64),
                ("events".into(), r.events as f64),
                ("peak_queue_depth".into(), r.peak_queue_depth as f64),
                ("queries".into(), r.queries_issued as f64),
            ]
        },
    );
    h.time_meta(
        &format!("city/sharded_{shards}/{nodes}n_{secs}s_regular"),
        1,
        || ShardedWorld::new(scenario.clone(), seed, shards).run(threads),
        |r| {
            vec![
                ("nodes".into(), nodes as f64),
                ("sim_secs".into(), secs as f64),
                ("shards".into(), shards as f64),
                ("threads".into(), threads as f64),
                ("events".into(), r.events as f64),
                ("queries".into(), r.queries_issued as f64),
            ]
        },
    );
    h.finish();
}
