//! One bench per paper figure.
//!
//! Each figure's data comes from simulating the four algorithms under
//! Table 2's scenario at 50 or 150 nodes; these benches time exactly that
//! pipeline at reduced clock (120 s simulated, single replication) so the
//! relative cost of the algorithms — the paper's whole point — is visible
//! in the timings. Figure *content* is produced by the `manet-sim`
//! binaries (`reproduce`, `fig_*`); see EXPERIMENTS.md.

use bench::{bench_scenario, black_box, run_once, Harness};
use p2p_core::AlgoKind;

fn main() {
    let h = Harness::from_env("figures");
    for (figs, n_nodes, secs) in [
        ("fig5_7_9_11_n50", 50usize, 120u64),
        ("fig6_8_10_12_n150", 150, 60),
    ] {
        for algo in AlgoKind::ALL {
            h.time(&format!("figures/{figs}/{}", algo.name()), 5, || {
                run_once(black_box(bench_scenario(n_nodes, algo, secs)), 7)
            });
        }
    }
    h.finish();
}
