//! Disabled-sink overhead gate for the observability layer.
//!
//! Runs the hot-path gate scenario (200 nodes, 900 simulated seconds,
//! Regular algorithm, calendar scheduler) with the observability sink in
//! its default disabled state, and compares the measured events/sec
//! against the checked-in `micro/sim_hot_path/calendar/...` record in
//! `BENCH_RESULTS.json`. Fails (non-zero exit) when throughput falls more
//! than the tolerance below the baseline — i.e. when instrumentation
//! stopped being free.
//!
//! Shared CI machines drift far more than the 2 % tolerance between the
//! moment the baseline was recorded and the moment the gate runs, so the
//! raw baseline is rescaled by a machine-speed factor measured *now*: the
//! ratio of the checked-in `sim_hot_path/calendar_obs/...` record (the
//! same scenario with the sink enabled) to a contemporaneous enabled-sink
//! run. The enabled run shares the disabled run's memory and instruction
//! profile — ambient contention, frequency scaling and thermal throttle
//! slow both alike and cancel — but it already pays for instrumentation,
//! so cost leaking into the *disabled* path slows only the gated run and
//! is caught. The factor is capped at 1.0 so a fast moment never raises
//! the floor above the nominal baseline. Measurements interleave
//! enabled/disabled pairs and the gate exits early once an iteration
//! clears the floor: a transient stall costs extra iterations, a real
//! regression fails them all.
//!
//! The gate also cross-checks determinism for free: the enabled and
//! disabled runs must produce identical event counts and fingerprints,
//! and both must match the baseline record's event count (workload drift
//! guard).
//!
//! After the gate passes, one sharded run of the same scenario
//! (`PERF_GATE_SHARDS` regions, default 4) is timed and *recorded* — not
//! yet gated on: speedup is core-count-bound, so a wall-clock floor would
//! gate the hardware, not the code. The record merges into the file named
//! by `PERF_GATE_SHARDED_JSON` (default: the `BENCH_JSON` results file;
//! CI points it at the smoke scratch file to keep the checked-in baseline
//! clean). `PERF_GATE_SHARDS=0` skips the sharded measurement.
//!
//! Knobs: `BENCH_HOT_NODES` / `BENCH_HOT_SECS` shrink the workload (the
//! baseline records for that shape must exist), `PERF_GATE_ITERS` caps
//! the measurement pairs (early exit on pass; default 4), `PERF_GATE_TOL`
//! the allowed fractional shortfall (default 0.02), `BENCH_JSON` the
//! results file.

use std::process::ExitCode;
use std::time::Instant;

use bench::{bench_scenario, env_u64, json::Value, run_result};
use manet_des::SchedulerKind;
use manet_sim::{RunResult, ShardedWorld};
use p2p_core::AlgoKind;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// One timed gate-scenario run; returns (events/sec, result).
fn timed_run(nodes: usize, secs: u64, observed: bool) -> (f64, RunResult) {
    let mut scenario = bench_scenario(nodes, AlgoKind::Regular, secs);
    if observed {
        scenario.obs = manet_obs::ObsConfig::enabled();
    }
    assert_eq!(
        scenario.obs.enabled, observed,
        "bench scenarios must default to the disabled sink"
    );
    let t0 = Instant::now();
    let r = run_result(scenario, 7, SchedulerKind::Calendar);
    let eps = r.events as f64 / t0.elapsed().as_secs_f64();
    (eps, r)
}

/// Time one sharded run of the gate scenario and merge the measurement
/// into the sharded-results file — recorded for the perf trajectory, not
/// gated on: the speedup is core-count-bound, and this may be a 1-core
/// box running the shard rounds in lockstep.
fn record_sharded(nodes: usize, secs: u64, shape: &str, bench_json: &str) {
    let shards = env_u64("PERF_GATE_SHARDS", 4) as usize;
    if shards == 0 {
        return;
    }
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let scenario = bench_scenario(nodes, AlgoKind::Regular, secs);
    let t0 = Instant::now();
    let r = ShardedWorld::new(scenario, 7, shards).run(threads);
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let eps = r.events as f64 / (ms / 1e3);
    println!(
        "perf_gate: sharded_{shards} (recorded, not gated): {ms:.0} ms, \
         {eps:.0} events/sec on {threads} worker(s)"
    );
    let path = std::env::var("PERF_GATE_SHARDED_JSON").unwrap_or_else(|_| bench_json.to_string());
    let name = format!("sharded_{shards}/{shape}");
    let mut records: Vec<Value> = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| Value::parse(&text).ok())
        .and_then(|doc| {
            doc.get("records")
                .and_then(Value::as_arr)
                .map(<[_]>::to_vec)
        })
        .unwrap_or_default();
    records.retain(|old| {
        !(old.get("suite").and_then(Value::as_str) == Some("perf_gate")
            && old.get("name").and_then(Value::as_str) == Some(name.as_str()))
    });
    records.push(Value::Obj(vec![
        ("suite".into(), Value::Str("perf_gate".into())),
        ("name".into(), Value::Str(name)),
        ("min_ms".into(), Value::Num(ms)),
        ("mean_ms".into(), Value::Num(ms)),
        ("max_ms".into(), Value::Num(ms)),
        ("iters".into(), Value::Num(1.0)),
        ("nodes".into(), Value::Num(nodes as f64)),
        ("sim_secs".into(), Value::Num(secs as f64)),
        ("shards".into(), Value::Num(shards as f64)),
        ("threads".into(), Value::Num(threads as f64)),
        ("events".into(), Value::Num(r.events as f64)),
        ("events_per_sec".into(), Value::Num(eps)),
    ]));
    let doc = Value::Obj(vec![("records".into(), Value::Arr(records))]);
    match std::fs::write(&path, doc.render()) {
        Ok(()) => println!("perf_gate: sharded record merged into {path}"),
        Err(e) => eprintln!("perf_gate: failed to write {path}: {e}"),
    }
}

fn main() -> ExitCode {
    let nodes = env_u64("BENCH_HOT_NODES", 200) as usize;
    let secs = env_u64("BENCH_HOT_SECS", 900);
    let iters = env_u64("PERF_GATE_ITERS", 4).max(1);
    let tol = env_f64("PERF_GATE_TOL", 0.02);
    let path = std::env::var("BENCH_JSON").unwrap_or_else(|_| "BENCH_RESULTS.json".into());
    let shape = format!("{nodes}n_{secs}s_regular");
    let disabled_name = format!("sim_hot_path/calendar/{shape}");
    let enabled_name = format!("sim_hot_path/calendar_obs/{shape}");

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf_gate: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match Value::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("perf_gate: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let micro_eps = |name: &str| -> Option<(f64, u64)> {
        let r = doc.get("records").and_then(Value::as_arr).and_then(|rs| {
            rs.iter().find(|r| {
                r.get("suite").and_then(Value::as_str) == Some("micro")
                    && r.get("name").and_then(Value::as_str) == Some(name)
            })
        })?;
        let eps = r.get("events_per_sec").and_then(Value::as_f64)?;
        let events = r.get("events").and_then(Value::as_f64).unwrap_or(0.0) as u64;
        (eps > 0.0).then_some((eps, events))
    };
    let Some((base_eps, base_events)) = micro_eps(&disabled_name) else {
        eprintln!("perf_gate: no micro/{disabled_name} record in {path}; run the micro bench");
        return ExitCode::FAILURE;
    };
    let Some((calib_eps, _)) = micro_eps(&enabled_name) else {
        eprintln!("perf_gate: no micro/{enabled_name} record in {path}; run the micro bench");
        return ExitCode::FAILURE;
    };

    for i in 0..iters {
        let (eps_obs, r_obs) = timed_run(nodes, secs, true);
        let (eps, r) = timed_run(nodes, secs, false);
        if r.fingerprint() != r_obs.fingerprint() || r.events != r_obs.events {
            eprintln!(
                "perf_gate: FAIL — enabling the sink changed the run \
                 ({} vs {} events)",
                r_obs.events, r.events
            );
            return ExitCode::FAILURE;
        }
        if base_events != 0 && r.events != base_events {
            eprintln!(
                "perf_gate: workload drift — run produced {} events but the baseline \
                 record has {base_events}; refresh the micro bench records before gating",
                r.events
            );
            return ExitCode::FAILURE;
        }
        // The machine right now vs the machine that recorded the baseline,
        // measured on the leak-insensitive enabled-sink workload.
        let speed = (eps_obs / calib_eps).min(1.0);
        let floor = base_eps * speed * (1.0 - tol);
        println!(
            "perf_gate: pair {}/{iters}: disabled {eps:.0} events/sec, enabled \
             {eps_obs:.0} (speed factor {speed:.3}, floor {floor:.0} at tol {tol})",
            i + 1,
        );
        if eps >= floor {
            println!(
                "perf_gate: OK — disabled sink at {:+.2}% of the speed-adjusted baseline",
                (eps / (base_eps * speed) - 1.0) * 100.0
            );
            record_sharded(nodes, secs, &shape, &path);
            return ExitCode::SUCCESS;
        }
        eprintln!("perf_gate: pair {}/{iters} below floor, retrying", i + 1);
    }
    eprintln!(
        "perf_gate: FAIL — all {iters} measurement pairs fell below the floor; \
         the disabled observability sink is no longer free"
    );
    ExitCode::FAILURE
}
