//! Observability perf gates: the disabled sink must be free, the enabled
//! sink nearly so, and the sharded path must hold its throughput.
//!
//! Three gates over the hot-path scenario (200 nodes, 900 simulated
//! seconds, Regular algorithm, calendar scheduler):
//!
//! 1. **Disabled sink** — events/sec with the sink off must stay within
//!    `PERF_GATE_TOL` (default 1%) of the checked-in
//!    `micro/sim_hot_path/calendar/...` baseline, machine-speed
//!    normalized (below).
//! 2. **Obs tax** — events/sec with the sink *on* must stay within
//!    `PERF_GATE_OBS_TOL` (default 3%) of the disabled run measured in
//!    the same interleaved pair. This is the gate that lets observability
//!    default to on: counters are slab bumps, span timing is
//!    stride-sampled, trace capture is reservoir-sampled.
//! 3. **Sharded** — a lockstep (single-thread, like the checked-in
//!    record) sharded run must stay within `PERF_GATE_SHARDED_TOL`
//!    (default 10%) of the `perf_gate/sharded_N/...` baseline, speed
//!    normalized. When no baseline record exists for the current shape
//!    the run is recorded, not gated. `PERF_GATE_SHARDS` (default 4, 0
//!    skips) picks the shard count; the measurement merges into
//!    `PERF_GATE_SHARDED_JSON` (default: the `BENCH_JSON` results file;
//!    CI points it at the smoke scratch file to keep the checked-in
//!    baseline clean).
//!
//! Shared CI machines drift far more than these tolerances between the
//! moment a baseline was recorded and the moment the gate runs, so raw
//! baselines are rescaled by a machine-speed factor measured *now*: the
//! ratio of the checked-in `sim_hot_path/calendar_obs/...` record to a
//! contemporaneous enabled-sink run. The enabled run shares the disabled
//! run's memory and instruction profile — ambient contention, frequency
//! scaling and thermal throttle slow both alike and cancel — but it
//! already pays for instrumentation, so cost leaking into the *disabled*
//! path slows only the gated run and is caught. The factor is capped at
//! 1.0 so a fast moment never raises the floor above the nominal
//! baseline. Measurements interleave enabled/disabled pairs and the gate
//! exits early once an iteration clears every floor: a transient stall
//! costs extra iterations, a real regression fails them all. The obs-tax
//! gate needs no normalization at all — both sides of its ratio are
//! measured back to back in the same pair.
//!
//! The gate also cross-checks determinism for free: the enabled and
//! disabled runs must produce identical event counts and fingerprints,
//! and both must match the baseline record's event count (workload drift
//! guard); the sharded run must match the sharded baseline's event count
//! likewise.
//!
//! Knobs: `BENCH_HOT_NODES` / `BENCH_HOT_SECS` shrink the workload (the
//! sequential baseline records for that shape must exist),
//! `PERF_GATE_ITERS` caps the measurement pairs (early exit on pass;
//! default 4), `BENCH_JSON` the results file.

use std::process::ExitCode;
use std::time::Instant;

use bench::{bench_scenario, env_u64, json::Value, run_result};
use manet_des::SchedulerKind;
use manet_sim::{RunResult, ShardedWorld};
use p2p_core::AlgoKind;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// One timed gate-scenario run; returns (events/sec, result).
fn timed_run(nodes: usize, secs: u64, observed: bool) -> (f64, RunResult) {
    let mut scenario = bench_scenario(nodes, AlgoKind::Regular, secs);
    if observed {
        scenario.obs = manet_obs::ObsConfig::enabled();
    }
    assert_eq!(
        scenario.obs.enabled, observed,
        "bench scenarios pin the sink state explicitly"
    );
    let t0 = Instant::now();
    let r = run_result(scenario, 7, SchedulerKind::Calendar);
    let eps = r.events as f64 / t0.elapsed().as_secs_f64();
    (eps, r)
}

/// Merge one sharded measurement into the sharded-results file.
fn merge_sharded_record(
    path: &str,
    name: &str,
    nodes: usize,
    secs: u64,
    shards: usize,
    ms: f64,
    r: &RunResult,
) {
    let eps = r.events as f64 / (ms / 1e3);
    let mut records: Vec<Value> = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| Value::parse(&text).ok())
        .and_then(|doc| {
            doc.get("records")
                .and_then(Value::as_arr)
                .map(<[_]>::to_vec)
        })
        .unwrap_or_default();
    records.retain(|old| {
        !(old.get("suite").and_then(Value::as_str) == Some("perf_gate")
            && old.get("name").and_then(Value::as_str) == Some(name))
    });
    records.push(Value::Obj(vec![
        ("suite".into(), Value::Str("perf_gate".into())),
        ("name".into(), Value::Str(name.to_string())),
        ("min_ms".into(), Value::Num(ms)),
        ("mean_ms".into(), Value::Num(ms)),
        ("max_ms".into(), Value::Num(ms)),
        ("iters".into(), Value::Num(1.0)),
        ("nodes".into(), Value::Num(nodes as f64)),
        ("sim_secs".into(), Value::Num(secs as f64)),
        ("shards".into(), Value::Num(shards as f64)),
        ("threads".into(), Value::Num(1.0)),
        ("events".into(), Value::Num(r.events as f64)),
        ("events_per_sec".into(), Value::Num(eps)),
    ]));
    let doc = Value::Obj(vec![("records".into(), Value::Arr(records))]);
    match std::fs::write(path, doc.render()) {
        Ok(()) => println!("perf_gate: sharded record merged into {path}"),
        Err(e) => eprintln!("perf_gate: failed to write {path}: {e}"),
    }
}

/// Gate (or, lacking a baseline, record) lockstep sharded throughput.
/// `speed` is the machine-speed factor measured by the sequential pairs —
/// the sharded run is single-threaded like the baseline record, so the
/// same factor transfers.
fn gate_sharded(
    nodes: usize,
    secs: u64,
    shape: &str,
    bench_json: &str,
    baseline: Option<(f64, u64)>,
    speed: f64,
    iters: u64,
) -> bool {
    let shards = env_u64("PERF_GATE_SHARDS", 4) as usize;
    if shards == 0 {
        return true;
    }
    let tol = env_f64("PERF_GATE_SHARDED_TOL", 0.10);
    let record_path =
        std::env::var("PERF_GATE_SHARDED_JSON").unwrap_or_else(|_| bench_json.to_string());
    let name = format!("sharded_{shards}/{shape}");
    for i in 0..iters {
        let scenario = bench_scenario(nodes, AlgoKind::Regular, secs);
        let t0 = Instant::now();
        let r = ShardedWorld::new(scenario, 7, shards).run(1);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let eps = r.events as f64 / (ms / 1e3);
        let Some((base_eps, base_events)) = baseline else {
            println!(
                "perf_gate: {name} (recorded, not gated — no baseline for this shape): \
                 {ms:.0} ms, {eps:.0} events/sec"
            );
            merge_sharded_record(&record_path, &name, nodes, secs, shards, ms, &r);
            return true;
        };
        if base_events != 0 && r.events != base_events {
            eprintln!(
                "perf_gate: sharded workload drift — run produced {} events but the \
                 baseline record has {base_events}; refresh the sharded record before gating",
                r.events
            );
            return false;
        }
        let floor = base_eps * speed * (1.0 - tol);
        println!(
            "perf_gate: {name} attempt {}/{iters}: {eps:.0} events/sec \
             (floor {floor:.0} at tol {tol})",
            i + 1,
        );
        if eps >= floor {
            println!(
                "perf_gate: OK — sharded path at {:+.2}% of the speed-adjusted baseline",
                (eps / (base_eps * speed) - 1.0) * 100.0
            );
            merge_sharded_record(&record_path, &name, nodes, secs, shards, ms, &r);
            return true;
        }
        eprintln!(
            "perf_gate: sharded attempt {}/{iters} below floor, retrying",
            i + 1
        );
    }
    eprintln!("perf_gate: FAIL — all sharded attempts fell below the floor");
    false
}

fn main() -> ExitCode {
    let nodes = env_u64("BENCH_HOT_NODES", 200) as usize;
    let secs = env_u64("BENCH_HOT_SECS", 900);
    let iters = env_u64("PERF_GATE_ITERS", 4).max(1);
    let tol = env_f64("PERF_GATE_TOL", 0.01);
    let obs_tol = env_f64("PERF_GATE_OBS_TOL", 0.03);
    let path = std::env::var("BENCH_JSON").unwrap_or_else(|_| "BENCH_RESULTS.json".into());
    let shape = format!("{nodes}n_{secs}s_regular");
    let disabled_name = format!("sim_hot_path/calendar/{shape}");
    let enabled_name = format!("sim_hot_path/calendar_obs/{shape}");

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf_gate: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match Value::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("perf_gate: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let record_eps = |suite: &str, name: &str| -> Option<(f64, u64)> {
        let r = doc.get("records").and_then(Value::as_arr).and_then(|rs| {
            rs.iter().find(|r| {
                r.get("suite").and_then(Value::as_str) == Some(suite)
                    && r.get("name").and_then(Value::as_str) == Some(name)
            })
        })?;
        let eps = r.get("events_per_sec").and_then(Value::as_f64)?;
        let events = r.get("events").and_then(Value::as_f64).unwrap_or(0.0) as u64;
        (eps > 0.0).then_some((eps, events))
    };
    let Some((base_eps, base_events)) = record_eps("micro", &disabled_name) else {
        eprintln!("perf_gate: no micro/{disabled_name} record in {path}; run the micro bench");
        return ExitCode::FAILURE;
    };
    let Some((calib_eps, _)) = record_eps("micro", &enabled_name) else {
        eprintln!("perf_gate: no micro/{enabled_name} record in {path}; run the micro bench");
        return ExitCode::FAILURE;
    };
    let sharded_baseline = {
        let shards = env_u64("PERF_GATE_SHARDS", 4) as usize;
        record_eps("perf_gate", &format!("sharded_{shards}/{shape}"))
    };

    let mut speed = 1.0f64;
    let mut passed = false;
    for i in 0..iters {
        let (eps_obs, r_obs) = timed_run(nodes, secs, true);
        let (eps, r) = timed_run(nodes, secs, false);
        if r.fingerprint() != r_obs.fingerprint() || r.events != r_obs.events {
            eprintln!(
                "perf_gate: FAIL — enabling the sink changed the run \
                 ({} vs {} events)",
                r_obs.events, r.events
            );
            return ExitCode::FAILURE;
        }
        if base_events != 0 && r.events != base_events {
            eprintln!(
                "perf_gate: workload drift — run produced {} events but the baseline \
                 record has {base_events}; refresh the micro bench records before gating",
                r.events
            );
            return ExitCode::FAILURE;
        }
        // The machine right now vs the machine that recorded the baseline,
        // measured on the leak-insensitive enabled-sink workload.
        speed = (eps_obs / calib_eps).min(1.0);
        let floor = base_eps * speed * (1.0 - tol);
        // The obs tax needs no normalization: both sides of the ratio were
        // measured back to back in this pair.
        let obs_floor = eps * (1.0 - obs_tol);
        println!(
            "perf_gate: pair {}/{iters}: disabled {eps:.0} events/sec, enabled \
             {eps_obs:.0} (speed factor {speed:.3}, disabled floor {floor:.0} at tol \
             {tol}, obs floor {obs_floor:.0} at tol {obs_tol})",
            i + 1,
        );
        if eps >= floor && eps_obs >= obs_floor {
            println!(
                "perf_gate: OK — disabled sink at {:+.2}% of the speed-adjusted \
                 baseline, obs tax {:.2}%",
                (eps / (base_eps * speed) - 1.0) * 100.0,
                (1.0 - eps_obs / eps) * 100.0
            );
            passed = true;
            break;
        }
        if eps < floor {
            eprintln!(
                "perf_gate: pair {}/{iters} disabled run below floor, retrying",
                i + 1
            );
        } else {
            eprintln!(
                "perf_gate: pair {}/{iters} obs tax {:.2}% above {obs_tol} budget, retrying",
                i + 1,
                (1.0 - eps_obs / eps) * 100.0
            );
        }
    }
    if !passed {
        eprintln!(
            "perf_gate: FAIL — all {iters} measurement pairs fell below a floor; \
             observability is no longer within its tax budget"
        );
        return ExitCode::FAILURE;
    }
    if gate_sharded(nodes, secs, &shape, &path, sharded_baseline, speed, iters) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
