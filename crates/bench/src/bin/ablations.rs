//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Each ablation toggles one of the paper's four claimed improvements (or a
//! simulator design decision) and measures the simulated network's cost via
//! total frames transmitted — throughput of the simulation doubles as a
//! proxy for traffic volume, and the printed count is the actual frame
//! count of the last run.

use bench::{bench_scenario, black_box, Harness};
use manet_des::SimDuration;
use manet_sim::World;
use p2p_core::AlgoKind;

/// Improvement 4 (Fig 2): the doubling retry timer. Ablated by pinning
/// MAXTIMER to TIMER_INITIAL (no backoff).
fn timer_backoff(h: &Harness) {
    h.time("ablation_timer_backoff/with_backoff", 5, || {
        let s = bench_scenario(40, AlgoKind::Regular, 120);
        black_box(World::new(s, 11).run().phy_total.frames_sent)
    });
    h.time("ablation_timer_backoff/no_backoff", 5, || {
        let mut s = bench_scenario(40, AlgoKind::Regular, 120);
        s.overlay.max_timer = s.overlay.timer_initial;
        black_box(World::new(s, 11).run().phy_total.frames_sent)
    });
}

/// Improvements 1-3 together are what separate Regular from Basic; the
/// head-to-head at identical load is the cleanest ablation of the bundle.
fn basic_vs_regular(h: &Harness) {
    for algo in [AlgoKind::Basic, AlgoKind::Regular] {
        h.time(
            &format!("ablation_discovery_style/{}", algo.name()),
            5,
            || {
                let s = bench_scenario(40, algo, 120);
                black_box(World::new(s, 12).run().phy_total.frames_sent)
            },
        );
    }
}

/// Simulator design choice: learning reverse routes from overheard floods
/// (our stand-in for ns-2's in-flood route setup). Off = every reply to a
/// discovery probe needs its own RREQ.
fn flood_route_learning(h: &Harness) {
    for (name, learn) in [("on", true), ("off", false)] {
        h.time(&format!("ablation_flood_route_learning/{name}"), 5, || {
            let mut s = bench_scenario(40, AlgoKind::Regular, 120);
            s.aodv.learn_routes_from_flood = learn;
            black_box(World::new(s, 13).run().phy_total.frames_sent)
        });
    }
}

/// Simulator design choice: analytic mobility positions refreshed at 1 s vs
/// 0.25 s — the accuracy/event-count trade recorded in DESIGN.md.
fn position_refresh(h: &Harness) {
    for (name, secs_num, secs_den) in [("1s", 1u64, 1u64), ("250ms", 1, 4)] {
        h.time(&format!("ablation_position_refresh/{name}"), 5, || {
            let mut s = bench_scenario(40, AlgoKind::Regular, 120);
            s.position_refresh =
                SimDuration::from_ticks(manet_des::TICKS_PER_SECOND * secs_num / secs_den);
            black_box(World::new(s, 14).run().events)
        });
    }
}

fn main() {
    let h = Harness::from_env("ablations");
    timer_backoff(&h);
    basic_vs_regular(&h);
    flood_route_learning(&h);
    position_refresh(&h);
    h.finish();
}
