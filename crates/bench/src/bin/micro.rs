//! Component microbenches: the substrate hot paths.

use bench::{bench_scenario, black_box, env_u64, run_result, Harness};
use manet_aodv::testkit::{TestNet, TestPayload};
use manet_aodv::AodvCfg;
use manet_des::{EventQueue, Rng, SchedulerKind, SimTime};
use manet_geom::{Point, Rect, SpatialGrid};
use manet_graph::Graph;
use p2p_content::Catalog;
use p2p_core::AlgoKind;

const SCHEDULERS: [SchedulerKind; 2] = [SchedulerKind::Calendar, SchedulerKind::Heap];

fn scheduler_name(kind: SchedulerKind) -> &'static str {
    match kind {
        SchedulerKind::Heap => "heap",
        SchedulerKind::Calendar => "calendar",
    }
}

/// The event queue: schedule + pop churn at simulation-like sizes, on both
/// scheduler backends head to head.
fn event_queue(h: &Harness) {
    for kind in SCHEDULERS {
        let sched = scheduler_name(kind);
        for n in [1_000u64, 10_000, 100_000] {
            h.time(&format!("event_queue/{sched}/schedule_pop/{n}"), 20, || {
                let mut rng = Rng::new(1);
                let mut q = EventQueue::with_scheduler(kind);
                for i in 0..n {
                    q.schedule(SimTime::from_ticks(rng.below(1_000_000_000)), i);
                }
                let mut acc = 0u64;
                while let Some((_, v)) = q.pop() {
                    acc = acc.wrapping_add(v);
                }
                black_box(acc)
            });
        }
        // Interleaved schedule/cancel/pop — the shape protocol retry timers
        // produce, and what the stale-entry compaction exists for.
        h.time(
            &format!("event_queue/{sched}/cancel_churn/10000"),
            20,
            || {
                let mut rng = Rng::new(2);
                let mut q = EventQueue::with_scheduler(kind);
                let mut pending = std::collections::VecDeque::new();
                let mut acc = 0u64;
                for i in 0..10_000u64 {
                    let at = SimTime::from_ticks(q.now().ticks() + 1 + rng.below(1_000_000));
                    pending.push_back(q.schedule(at, i));
                    if pending.len() >= 8 {
                        let id = pending.pop_front().expect("nonempty");
                        if rng.below(2) == 0 {
                            q.cancel(id);
                        }
                    }
                    if i % 2 == 0 {
                        if let Some((_, v)) = q.pop() {
                            acc = acc.wrapping_add(v);
                        }
                    }
                }
                while let Some((_, v)) = q.pop() {
                    acc = acc.wrapping_add(v);
                }
                black_box(acc)
            },
        );
    }
}

/// The headline end-to-end cost: a full replication of the Table 2 Regular
/// scenario on each scheduler. This is the perf regression gate — its
/// records in BENCH_RESULTS.json (wall-clock, events/sec, peak queue depth)
/// are the trajectory future PRs measure against. `BENCH_HOT_NODES` /
/// `BENCH_HOT_SECS` shrink the workload for CI smoke runs; defaults are the
/// gate scenario (200 nodes, 900 simulated seconds).
fn sim_hot_path(h: &Harness) {
    let nodes = env_u64("BENCH_HOT_NODES", 200) as usize;
    let secs = env_u64("BENCH_HOT_SECS", 900);
    let mut fingerprints = Vec::new();
    for kind in SCHEDULERS {
        let sched = scheduler_name(kind);
        h.time_meta(
            &format!("sim_hot_path/{sched}/{nodes}n_{secs}s_regular"),
            2,
            || run_result(bench_scenario(nodes, AlgoKind::Regular, secs), 7, kind),
            |r| {
                fingerprints.push(r.fingerprint());
                vec![
                    ("nodes".into(), nodes as f64),
                    ("sim_secs".into(), secs as f64),
                    ("events".into(), r.events as f64),
                    ("peak_queue_depth".into(), r.peak_queue_depth as f64),
                ]
            },
        );
    }
    if let [a, b] = fingerprints[..] {
        assert_eq!(a, b, "schedulers diverged on the hot-path scenario");
    }
    // The same scenario with the observability sink enabled. perf_gate uses
    // this record as its machine-speed calibration: it shares the disabled
    // run's memory/instruction profile (so ambient contention cancels) but
    // already pays instrumentation (so a leak into the disabled path slows
    // only the disabled record).
    h.time_meta(
        &format!("sim_hot_path/calendar_obs/{nodes}n_{secs}s_regular"),
        2,
        || {
            let mut s = bench_scenario(nodes, AlgoKind::Regular, secs);
            s.obs = manet_obs::ObsConfig::enabled();
            run_result(s, 7, SchedulerKind::Calendar)
        },
        |r| {
            assert_eq!(
                r.fingerprint(),
                fingerprints[0],
                "observed run diverged from the unobserved hot path"
            );
            vec![
                ("nodes".into(), nodes as f64),
                ("sim_secs".into(), secs as f64),
                ("events".into(), r.events as f64),
                ("peak_queue_depth".into(), r.peak_queue_depth as f64),
            ]
        },
    );
}

/// The spatial grid: the radio's neighborhood query.
fn spatial_grid(h: &Harness) {
    for n in [50u32, 150, 1000] {
        let mut rng = Rng::new(2);
        let mut grid = SpatialGrid::new(Rect::sized(100.0, 100.0), 10.0);
        for k in 0..n {
            grid.upsert(
                k,
                Point::new(rng.range_f64(0.0, 100.0), rng.range_f64(0.0, 100.0)),
            );
        }
        let mut out = Vec::new();
        let mut qr = Rng::new(3);
        h.time(&format!("spatial_grid/query_range_10m/{n}"), 1000, || {
            let p = Point::new(qr.range_f64(0.0, 100.0), qr.range_f64(0.0, 100.0));
            grid.query_range(p, 10.0, u32::MAX, &mut out);
            black_box(out.len())
        });
    }
}

/// AODV: a full route discovery over a line topology, plus the controlled
/// broadcast the paper patched into ns-2.
fn aodv_discovery(h: &Harness) {
    for hops in [3usize, 8, 15] {
        h.time(&format!("aodv/route_discovery_line/{hops}"), 50, || {
            let mut net = TestNet::line(hops + 1, AodvCfg::default());
            net.send(0, hops as u32, TestPayload(1));
            net.step_until(
                SimTime::from_secs(10),
                manet_des::SimDuration::from_millis(100),
            );
            black_box(net.delivered.len())
        });
    }
    h.time("aodv/controlled_flood_mesh20_ttl6", 50, || {
        let mut net = TestNet::new(20, AodvCfg::default());
        for a in 0..20u32 {
            for b in (a + 1)..20 {
                if (a + b) % 3 != 0 {
                    net.link(a, b);
                }
            }
        }
        net.flood(0, 6, TestPayload(9));
        black_box(net.flood_delivered.len())
    });
}

/// Zipf catalogue assignment and sampling.
fn catalog(h: &Harness) {
    h.time("catalog/assign_113_members", 200, || {
        let mut rng = Rng::new(4);
        black_box(Catalog::default().assign(113, &mut rng))
    });
    let cat = Catalog::default();
    let owned = std::collections::BTreeSet::new();
    let mut rng = Rng::new(5);
    h.time("catalog/zipf_sample", 10_000, || {
        black_box(cat.sample_target(&owned, &mut rng))
    });
}

/// Graph analysis: BFS and clustering at overlay scale.
fn graph_analysis(h: &Harness) {
    let mut rng = Rng::new(6);
    let n = 113u32;
    let mut g = Graph::new(n as usize);
    for _ in 0..(n * 3) {
        let a = rng.below(n as u64) as u32;
        let mut b = rng.below(n as u64) as u32;
        if a == b {
            b = (b + 1) % n;
        }
        g.add_edge(a, b);
    }
    h.time("graph/bfs_113", 500, || black_box(g.bfs_distances(0)));
    h.time("graph/clustering_113", 100, || {
        black_box(g.avg_clustering())
    });
    h.time("graph/path_length_113", 100, || {
        black_box(g.characteristic_path_length())
    });
}

fn main() {
    let h = Harness::from_env("micro");
    event_queue(&h);
    spatial_grid(&h);
    aodv_discovery(&h);
    catalog(&h);
    graph_analysis(&h);
    sim_hot_path(&h);
    h.finish();
}
