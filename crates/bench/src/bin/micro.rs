//! Component microbenches: the substrate hot paths.

use bench::{black_box, Harness};
use manet_aodv::testkit::{TestNet, TestPayload};
use manet_aodv::AodvCfg;
use manet_des::{EventQueue, Rng, SimTime};
use manet_geom::{Point, Rect, SpatialGrid};
use manet_graph::Graph;
use p2p_content::Catalog;

/// The event queue: schedule + pop churn at simulation-like sizes.
fn event_queue(h: &Harness) {
    for n in [1_000u64, 10_000, 100_000] {
        h.time(&format!("event_queue/schedule_pop/{n}"), 20, || {
            let mut rng = Rng::new(1);
            let mut q = EventQueue::new();
            for i in 0..n {
                q.schedule(SimTime::from_ticks(rng.below(1_000_000_000)), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        });
    }
}

/// The spatial grid: the radio's neighborhood query.
fn spatial_grid(h: &Harness) {
    for n in [50u32, 150, 1000] {
        let mut rng = Rng::new(2);
        let mut grid = SpatialGrid::new(Rect::sized(100.0, 100.0), 10.0);
        for k in 0..n {
            grid.upsert(
                k,
                Point::new(rng.range_f64(0.0, 100.0), rng.range_f64(0.0, 100.0)),
            );
        }
        let mut out = Vec::new();
        let mut qr = Rng::new(3);
        h.time(&format!("spatial_grid/query_range_10m/{n}"), 1000, || {
            let p = Point::new(qr.range_f64(0.0, 100.0), qr.range_f64(0.0, 100.0));
            grid.query_range(p, 10.0, u32::MAX, &mut out);
            black_box(out.len())
        });
    }
}

/// AODV: a full route discovery over a line topology, plus the controlled
/// broadcast the paper patched into ns-2.
fn aodv_discovery(h: &Harness) {
    for hops in [3usize, 8, 15] {
        h.time(&format!("aodv/route_discovery_line/{hops}"), 50, || {
            let mut net = TestNet::line(hops + 1, AodvCfg::default());
            net.send(0, hops as u32, TestPayload(1));
            net.step_until(
                SimTime::from_secs(10),
                manet_des::SimDuration::from_millis(100),
            );
            black_box(net.delivered.len())
        });
    }
    h.time("aodv/controlled_flood_mesh20_ttl6", 50, || {
        let mut net = TestNet::new(20, AodvCfg::default());
        for a in 0..20u32 {
            for b in (a + 1)..20 {
                if (a + b) % 3 != 0 {
                    net.link(a, b);
                }
            }
        }
        net.flood(0, 6, TestPayload(9));
        black_box(net.flood_delivered.len())
    });
}

/// Zipf catalogue assignment and sampling.
fn catalog(h: &Harness) {
    h.time("catalog/assign_113_members", 200, || {
        let mut rng = Rng::new(4);
        black_box(Catalog::default().assign(113, &mut rng))
    });
    let cat = Catalog::default();
    let owned = std::collections::BTreeSet::new();
    let mut rng = Rng::new(5);
    h.time("catalog/zipf_sample", 10_000, || {
        black_box(cat.sample_target(&owned, &mut rng))
    });
}

/// Graph analysis: BFS and clustering at overlay scale.
fn graph_analysis(h: &Harness) {
    let mut rng = Rng::new(6);
    let n = 113u32;
    let mut g = Graph::new(n as usize);
    for _ in 0..(n * 3) {
        let a = rng.below(n as u64) as u32;
        let mut b = rng.below(n as u64) as u32;
        if a == b {
            b = (b + 1) % n;
        }
        g.add_edge(a, b);
    }
    h.time("graph/bfs_113", 500, || black_box(g.bfs_distances(0)));
    h.time("graph/clustering_113", 100, || {
        black_box(g.avg_clustering())
    });
    h.time("graph/path_length_113", 100, || {
        black_box(g.characteristic_path_length())
    });
}

fn main() {
    let h = Harness::from_env("micro");
    event_queue(&h);
    spatial_grid(&h);
    aodv_discovery(&h);
    catalog(&h);
    graph_analysis(&h);
}
