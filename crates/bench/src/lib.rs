//! Shared helpers for the Criterion benches.
//!
//! The figure benches run scaled-down versions of the paper's scenarios
//! (same shape, shorter clock) so `cargo bench` completes in minutes; the
//! binaries in `manet-sim` regenerate the figures at full scale.

use manet_des::SimDuration;
use manet_sim::{Scenario, World};
use p2p_core::AlgoKind;

/// A bench-sized paper scenario: full Table 2 shape, short clock.
pub fn bench_scenario(n_nodes: usize, algo: AlgoKind, secs: u64) -> Scenario {
    let mut s = Scenario::quick(n_nodes, algo, secs);
    s.join_window = SimDuration::from_secs(5);
    s
}

/// Run one replication and return a value the optimizer cannot discard.
pub fn run_once(scenario: Scenario, seed: u64) -> u64 {
    let r = World::new(scenario, seed).run();
    r.events + r.answers_received + r.phy_total.frames_sent
}
