//! Shared helpers for the in-repo timing benches.
//!
//! The benches are plain binaries on a dependency-free harness: each suite
//! times closures over a handful of iterations and prints a fixed-width
//! min/mean/max table. Not statistically rigorous — these exist to show the
//! *relative* cost of the algorithms and substrate hot paths and to catch
//! order-of-magnitude regressions, while keeping the workspace free of
//! external dev-dependencies.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin micro [filter-substring]
//! cargo run --release -p bench --bin figures
//! cargo run --release -p bench --bin ablations
//! BENCH_ITERS=10 cargo run --release -p bench --bin figures
//! ```
//!
//! The figure benches run scaled-down versions of the paper's scenarios
//! (same shape, shorter clock) so a full sweep completes in minutes; the
//! binaries in `manet-sim` regenerate the figures at full scale.

use std::cell::RefCell;
use std::time::Instant;

pub use std::hint::black_box;

use manet_des::{SchedulerKind, SimDuration};
use manet_sim::{RunResult, Scenario, World};
use p2p_core::AlgoKind;

pub use manet_obs::json;

use json::Value;

/// A bench-sized paper scenario: full Table 2 shape, short clock. The
/// observability sink — on by default at the scenario level — is pinned
/// *off* here, so every bench record means "bare hot path"; observed
/// variants (micro's `calendar_obs`, the perf gate's enabled runs) opt
/// back in explicitly.
pub fn bench_scenario(n_nodes: usize, algo: AlgoKind, secs: u64) -> Scenario {
    let mut s = Scenario::quick(n_nodes, algo, secs);
    s.join_window = SimDuration::from_secs(5);
    s.obs = manet_obs::ObsConfig::disabled();
    s
}

/// Run one replication and return a value the optimizer cannot discard.
pub fn run_once(scenario: Scenario, seed: u64) -> u64 {
    let r = World::new(scenario, seed).run();
    r.events + r.answers_received + r.phy_total.frames_sent
}

/// Run one replication on the given scheduler and return the full result,
/// for benches that record workload metadata (events, peak queue depth).
pub fn run_result(scenario: Scenario, seed: u64, kind: SchedulerKind) -> RunResult {
    World::with_scheduler(scenario, seed, kind).run()
}

/// Read a numeric workload knob from the environment.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// One finished measurement, bound for `BENCH_RESULTS.json`.
struct Record {
    name: String,
    min_ms: f64,
    mean_ms: f64,
    max_ms: f64,
    iters: u32,
    /// Workload metadata (nodes, events, peak_queue_depth, …) plus derived
    /// rates (events_per_sec).
    extra: Vec<(String, f64)>,
}

/// The timing harness: substring filtering via the first CLI argument,
/// iteration override via `BENCH_ITERS`, machine-readable output merged
/// into `BENCH_RESULTS.json` (path override via `BENCH_JSON`) on
/// [`finish`](Harness::finish).
pub struct Harness {
    suite: String,
    filter: Option<String>,
    iters_override: Option<u32>,
    records: RefCell<Vec<Record>>,
}

impl Harness {
    /// Build from the process environment and print the table header.
    pub fn from_env(suite: &str) -> Self {
        let filter = std::env::args().nth(1);
        let iters_override = std::env::var("BENCH_ITERS")
            .ok()
            .and_then(|v| v.trim().parse().ok());
        println!("# suite: {suite}");
        if let Some(f) = &filter {
            println!("# filter: {f}");
        }
        println!(
            "{:<52} {:>12} {:>12} {:>12} {:>6}",
            "benchmark", "min", "mean", "max", "iters"
        );
        Harness {
            suite: suite.to_string(),
            filter,
            iters_override,
            records: RefCell::new(Vec::new()),
        }
    }

    /// Time `f` over `iters` iterations (after one untimed warmup run) and
    /// print a table row. Skipped when the name does not match the filter.
    pub fn time<R>(&self, name: &str, iters: u32, f: impl FnMut() -> R) {
        self.time_meta(name, iters, f, |_| Vec::new());
    }

    /// Like [`time`](Harness::time), but `meta` maps the warmup run's result
    /// to workload metadata recorded alongside the timings. When the
    /// metadata contains an `events` count, a derived `events_per_sec`
    /// (from the mean wall-clock) is added automatically.
    pub fn time_meta<R>(
        &self,
        name: &str,
        iters: u32,
        mut f: impl FnMut() -> R,
        meta: impl FnOnce(&R) -> Vec<(String, f64)>,
    ) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let iters = self.iters_override.unwrap_or(iters).max(1);
        let warmup = f();
        let mut extra = meta(&warmup);
        black_box(warmup);
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        let mut total = 0.0f64;
        for _ in 0..iters {
            let t0 = Instant::now();
            black_box(f());
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            min = min.min(ms);
            max = max.max(ms);
            total += ms;
        }
        let mean = total / iters as f64;
        println!("{name:<52} {min:>10.3}ms {mean:>10.3}ms {max:>10.3}ms {iters:>6}");
        if let Some(&(_, events)) = extra.iter().find(|(k, _)| k == "events") {
            if mean > 0.0 {
                extra.push(("events_per_sec".into(), events / (mean / 1e3)));
            }
        }
        self.records.borrow_mut().push(Record {
            name: name.to_string(),
            min_ms: min,
            mean_ms: mean,
            max_ms: max,
            iters,
            extra,
        });
    }

    /// Merge every recorded measurement into the results file and report
    /// where it went.
    ///
    /// The file (default `BENCH_RESULTS.json`, overridable via the
    /// `BENCH_JSON` env var) accumulates across suites: records matching
    /// this run's `(suite, name)` pairs are replaced in place, everything
    /// else — other suites, filtered-out benches — is preserved, so each
    /// suite run refreshes only its own rows and the file stays the
    /// repo-wide perf trajectory.
    pub fn finish(self) {
        let path = std::env::var("BENCH_JSON").unwrap_or_else(|_| "BENCH_RESULTS.json".into());
        let mut merged: Vec<Value> = match std::fs::read_to_string(&path) {
            Ok(text) => Value::parse(&text)
                .ok()
                .and_then(|doc| {
                    doc.get("records")
                        .and_then(Value::as_arr)
                        .map(<[_]>::to_vec)
                })
                .unwrap_or_default(),
            Err(_) => Vec::new(),
        };
        let fresh: Vec<Value> = self
            .records
            .into_inner()
            .into_iter()
            .map(|r| {
                let mut fields = vec![
                    ("suite".to_string(), Value::Str(self.suite.clone())),
                    ("name".to_string(), Value::Str(r.name)),
                    ("min_ms".to_string(), Value::Num(r.min_ms)),
                    ("mean_ms".to_string(), Value::Num(r.mean_ms)),
                    ("max_ms".to_string(), Value::Num(r.max_ms)),
                    ("iters".to_string(), Value::Num(f64::from(r.iters))),
                ];
                fields.extend(r.extra.into_iter().map(|(k, v)| (k, Value::Num(v))));
                Value::Obj(fields)
            })
            .collect();
        let key = |v: &Value| -> (String, String) {
            let field = |k: &str| {
                v.get(k)
                    .and_then(Value::as_str)
                    .unwrap_or_default()
                    .to_string()
            };
            (field("suite"), field("name"))
        };
        merged.retain(|old| !fresh.iter().any(|new| key(new) == key(old)));
        merged.extend(fresh);
        let doc = Value::Obj(vec![("records".to_string(), Value::Arr(merged))]);
        match std::fs::write(&path, doc.render()) {
            Ok(()) => println!("# results merged into {path}"),
            Err(e) => eprintln!("# failed to write {path}: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_builder_is_bench_shaped() {
        let s = bench_scenario(40, AlgoKind::Regular, 120);
        s.validate();
        assert_eq!(s.join_window, SimDuration::from_secs(5));
    }

    #[test]
    fn run_once_produces_nonzero_work() {
        assert!(run_once(bench_scenario(12, AlgoKind::Regular, 30), 7) > 0);
    }
}
