//! Shared helpers for the in-repo timing benches.
//!
//! The benches are plain binaries on a dependency-free harness: each suite
//! times closures over a handful of iterations and prints a fixed-width
//! min/mean/max table. Not statistically rigorous — these exist to show the
//! *relative* cost of the algorithms and substrate hot paths and to catch
//! order-of-magnitude regressions, while keeping the workspace free of
//! external dev-dependencies.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin micro [filter-substring]
//! cargo run --release -p bench --bin figures
//! cargo run --release -p bench --bin ablations
//! BENCH_ITERS=10 cargo run --release -p bench --bin figures
//! ```
//!
//! The figure benches run scaled-down versions of the paper's scenarios
//! (same shape, shorter clock) so a full sweep completes in minutes; the
//! binaries in `manet-sim` regenerate the figures at full scale.

use std::time::Instant;

pub use std::hint::black_box;

use manet_des::SimDuration;
use manet_sim::{Scenario, World};
use p2p_core::AlgoKind;

/// A bench-sized paper scenario: full Table 2 shape, short clock.
pub fn bench_scenario(n_nodes: usize, algo: AlgoKind, secs: u64) -> Scenario {
    let mut s = Scenario::quick(n_nodes, algo, secs);
    s.join_window = SimDuration::from_secs(5);
    s
}

/// Run one replication and return a value the optimizer cannot discard.
pub fn run_once(scenario: Scenario, seed: u64) -> u64 {
    let r = World::new(scenario, seed).run();
    r.events + r.answers_received + r.phy_total.frames_sent
}

/// The timing harness: substring filtering via the first CLI argument,
/// iteration override via `BENCH_ITERS`.
pub struct Harness {
    filter: Option<String>,
    iters_override: Option<u32>,
}

impl Harness {
    /// Build from the process environment and print the table header.
    pub fn from_env(suite: &str) -> Self {
        let filter = std::env::args().nth(1);
        let iters_override = std::env::var("BENCH_ITERS")
            .ok()
            .and_then(|v| v.trim().parse().ok());
        println!("# suite: {suite}");
        if let Some(f) = &filter {
            println!("# filter: {f}");
        }
        println!(
            "{:<52} {:>12} {:>12} {:>12} {:>6}",
            "benchmark", "min", "mean", "max", "iters"
        );
        Harness {
            filter,
            iters_override,
        }
    }

    /// Time `f` over `iters` iterations (after one untimed warmup run) and
    /// print a table row. Skipped when the name does not match the filter.
    pub fn time<R>(&self, name: &str, iters: u32, mut f: impl FnMut() -> R) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let iters = self.iters_override.unwrap_or(iters).max(1);
        black_box(f());
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        let mut total = 0.0f64;
        for _ in 0..iters {
            let t0 = Instant::now();
            black_box(f());
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            min = min.min(ms);
            max = max.max(ms);
            total += ms;
        }
        let mean = total / iters as f64;
        println!("{name:<52} {min:>10.3}ms {mean:>10.3}ms {max:>10.3}ms {iters:>6}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_builder_is_bench_shaped() {
        let s = bench_scenario(40, AlgoKind::Regular, 120);
        s.validate();
        assert_eq!(s.join_window, SimDuration::from_secs(5));
    }

    #[test]
    fn run_once_produces_nonzero_work() {
        assert!(run_once(bench_scenario(12, AlgoKind::Regular, 30), 7) > 0);
    }
}
